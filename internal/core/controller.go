// Package core implements the paper's online finite-queue-aware energy cost
// minimization algorithm (Section IV): the drift-plus-penalty controller
// that each slot observes the random network state, solves the four
// subproblems S1 (link scheduling), S2 (resource allocation), S3 (routing)
// and S4 (energy management), and updates the data queues Q_i^s (eq. (15)),
// the scaled virtual link queues H_ij (eq. (30)) and the battery/shifted
// energy queues x_i / z_i (eqs. (4), (31)).
//
// The paper's problem chain, and where each transformation lives:
//
//	P1 (min time-avg energy cost, per-slot constraints)
//	 → P2: admission reward −λ·Σ k_s added so strong stability implies
//	   near-optimal admission (the λV term read by internal/alloc);
//	 → P3: the per-slot capacity constraint (25) replaced by its time
//	   average (27), enforced through the virtual queues H_ij that this
//	   package maintains; Theorems 4–5 sandwich ψ*_P1 between the
//	   controller's achieved penalty objective and the relaxed bound
//	   ψ*_P3̄ − B/V computed by internal/sim.BoundsAt.
//
// Minimizing the drift-plus-penalty bound (Lemma 1, constant B of
// eq. (34)) decouples P3 into S1–S4, dispatched to internal/sched,
// internal/alloc, internal/routing, and internal/energymgmt respectively.
//
// With Config.Instrument set, every Step reports a StageBreakdown (wall
// time and LP work per subproblem) consumed by the metrics layer
// (internal/metrics, docs/METRICS.md).
package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"greencell/internal/alloc"
	"greencell/internal/energy"
	"greencell/internal/energymgmt"
	"greencell/internal/faultinject"
	"greencell/internal/lyapunov"
	"greencell/internal/queueing"
	"greencell/internal/rng"
	"greencell/internal/routing"
	"greencell/internal/sched"
	"greencell/internal/topology"
	"greencell/internal/traffic"
	"greencell/internal/units"
)

// Config assembles one controller.
type Config struct {
	// Net is the physical network.
	Net *topology.Network
	// Traffic is the session set.
	Traffic *traffic.Model
	// V is the drift-plus-penalty weight (cost emphasis).
	V float64
	// Lambda is the admission reward coefficient λ of the P2 objective.
	Lambda float64
	// SlotSeconds is Δt.
	SlotSeconds float64
	// Cost is the provider's grid energy cost f.
	Cost energy.CostFunc
	// Scheduler solves S1 (nil = the paper's SequentialFix).
	Scheduler sched.Scheduler
	// EnergyGate, when set, caps each node's schedulable transmit power by
	// the energy actually obtainable this slot (renewable + discharge
	// headroom + grid), keeping S4 deficits out of normal operation.
	EnergyGate bool
	// AuditDrift, when set, records a per-slot DriftAudit in every
	// SlotResult: the realized Lyapunov drift and the Lemma 1 bound it
	// must satisfy. Used by tests and the validation harness.
	AuditDrift bool
	// TrackDelay, when set, shadows every data queue with a FIFO of packet
	// admission times, yielding exact per-packet delivery delays (see
	// Controller.SessionDelay) at some memory cost.
	TrackDelay bool
	// Instrument, when set, fills SlotResult.Stages with per-stage wall
	// times and LP work counts for the metrics layer (docs/METRICS.md).
	// Off by default: no clock reads or extra allocations happen on the
	// control path when disabled.
	Instrument bool
	// WarmStartLP, when set, carries LP warm-start state across Step
	// calls: S1 reuses the sequential-fix relaxation's basis between fix
	// rounds and slots, and S4 keeps its inner programs alive so the
	// golden-section budget probes re-solve by dual simplex
	// (docs/PERFORMANCE.md). Off by default — the warm path may settle on
	// a different vertex of a degenerate optimum, so the golden-pinned
	// fixture runs cold.
	WarmStartLP bool
	// Env overrides how the per-slot random state is drawn (nil = the
	// default stochastic environment). Tests and the offline-optimum
	// comparison inject fixed realizations here.
	Env Environment
	// Check, when set, receives every slot's raw decisions and state
	// transitions (SlotCheck) after the slot completes; a non-nil return
	// aborts the run. internal/invariant wires the paper-constraint
	// checker here (enabled via sim.Scenario.CheckInvariants). Nil keeps
	// the control path free of the extra snapshots.
	Check func(*SlotCheck) error
	// Faults, when set, injects deterministic faults at the named sites of
	// internal/faultinject; injected failures take exactly the same
	// degradation path as organic ones. Nil injects nothing.
	Faults *faultinject.Injector
	// Budget bounds each slot's solve work (docs/ROBUSTNESS.md). The zero
	// value imposes no caller budget.
	Budget SolveBudget
}

// SolveBudget bounds the optimization work a single Step may spend. When a
// stage exhausts its budget the controller does not error: it falls back to
// the stage's safe action and marks the slot degraded.
type SolveBudget struct {
	// MaxLPIterations caps the total simplex iterations of each LP solve
	// triggered by S1 and S4 (lp.Problem.SetIterationLimit); 0 = no cap
	// beyond the engines' built-in safety limit.
	MaxLPIterations int
	// SlotDeadline is the wall-clock budget for one Step's solves; 0 = no
	// deadline. Once spent, every remaining stage of the slot takes its
	// safe action (cause "deadline"). Real wall-clock overruns are
	// machine-dependent, so runs that must be bit-identical should either
	// leave this zero or set it generously; the injected Latency fault
	// consumes the deadline virtually — without sleeping — and is fully
	// deterministic.
	SlotDeadline time.Duration
}

// Observation is the random state revealed at the beginning of a slot:
// band widths W_m(t), per-node renewable output R_i(t), and per-node
// grid connectivity ω_i(t).
type Observation struct {
	Widths    []units.Bandwidth
	RenewWh   []units.Energy
	Connected []bool
}

// Environment produces per-slot observations.
type Environment interface {
	// Observe returns the slot's random state. src is the controller's
	// deterministic randomness stream for the slot.
	Observe(slot int, src *rng.Source, net *topology.Network) Observation
}

// DefaultEnvironment samples the paper's processes: band widths from the
// spectrum model, renewable outputs and grid connectivity per node spec.
type DefaultEnvironment struct{}

// Observe implements Environment.
func (DefaultEnvironment) Observe(slot int, src *rng.Source, net *topology.Network) Observation {
	obs := Observation{
		Widths:    net.Spectrum.SampleWidths(src.Split(fmt.Sprintf("widths_%d", slot))),
		RenewWh:   make([]units.Energy, net.NumNodes()),
		Connected: make([]bool, net.NumNodes()),
	}
	envSrc := src.Split(fmt.Sprintf("env_%d", slot))
	for i, nd := range net.Nodes {
		obs.RenewWh[i] = nd.Spec.Renewable.Sample(envSrc)
		obs.Connected[i] = nd.Spec.Grid.SampleConnected(envSrc)
	}
	return obs
}

// FixedEnvironment replays a pre-drawn realization (one Observation per
// slot, cycling if the run is longer).
type FixedEnvironment struct {
	Slots []Observation
}

// Observe implements Environment.
func (f FixedEnvironment) Observe(slot int, _ *rng.Source, _ *topology.Network) Observation {
	return f.Slots[slot%len(f.Slots)]
}

// ErrConfig reports an invalid controller configuration.
var ErrConfig = errors.New("core: invalid config")

// SlotResult reports what happened in one slot.
type SlotResult struct {
	// Slot is the 0-based slot index.
	Slot int
	// GridWh is P(t), the total base-station grid draw.
	GridWh units.Energy
	// EnergyCost is f(P(t)).
	EnergyCost units.Cost
	// AdmittedPkts is Σ_s k_s(t).
	AdmittedPkts float64
	// PenaltyObjective is the per-slot P2 objective f(P(t)) − λ·Σ_s k_s(t);
	// its time average is the quantity bounded by Theorems 4–5. It mixes
	// cost units with reward-weighted packets, so it stays a bare float64.
	PenaltyObjective float64
	// DeliveredPkts[s] is the packets that reached d_s this slot.
	DeliveredPkts []float64
	// ScheduledLinks is the number of active links.
	ScheduledLinks int
	// TxEnergyWh is the total transmission+reception energy Σ_i E_i^TX.
	TxEnergyWh units.Energy
	// DemandWh is the total node energy demand Σ_i E_i(t).
	DemandWh units.Energy
	// DeficitWh is unserved energy demand (0 in normal operation).
	DeficitWh units.Energy
	// MarginalPriceWh is the S4 shadow price V·f'(P(t)) of grid energy.
	MarginalPriceWh units.Price
	// RenewableWh is the total renewable output this slot.
	RenewableWh units.Energy
	// OfferedPkts is Σ_s K_s^max, the traffic the sessions offered for
	// admission this slot (the upper limit of the S2 decision k_s(t)).
	OfferedPkts float64
	// DroppedPkts is OfferedPkts − AdmittedPkts: traffic the admission
	// control turned away because the source backlog exceeded λV.
	DroppedPkts float64

	// Queue aggregates at the END of the slot (what Fig. 2(b)–(e) plot).
	DataBacklogBS, DataBacklogUsers float64
	BatteryWhBS, BatteryWhUsers     units.Energy
	VirtualBacklogH                 float64
	ShiftedEnergyAbsZ               units.Energy

	// Audit holds the realized Lyapunov drift audit (nil unless
	// Config.AuditDrift).
	Audit *DriftAudit
	// Stages holds the per-stage timing and solver-work breakdown (nil
	// unless Config.Instrument).
	Stages *StageBreakdown

	// Degraded marks a slot where at least one stage fell back to its safe
	// action instead of its optimizing decision (docs/ROBUSTNESS.md).
	Degraded bool
	// DegradedCauses lists the degradation causes recorded this slot, in
	// stage order. Labels: obs, latency, deadline, s1_infeasible,
	// s1_iterlimit, s2_fault, s3_fault, s4_infeasible, s4_iterlimit.
	DegradedCauses []string
}

// markDegraded records one degradation cause on the slot.
func (r *SlotResult) markDegraded(cause string) {
	r.Degraded = true
	r.DegradedCauses = append(r.DegradedCauses, cause)
}

// StageBreakdown records how one Step spent its time across the paper's
// per-slot subproblems, plus the LP work of the solver-backed stages.
// Wall-clock fields are nanoseconds and map to the *_ns fields of the
// metrics schema — the only fields of a fixed-seed run that are not
// deterministic (metrics.CanonicalizeJSONL zeroes them for comparisons).
type StageBreakdown struct {
	// S1NS times link scheduling (weight/power-cap prep + the solve).
	// S2NS times resource allocation, S3NS routing, S4NS energy
	// management including the battery updates. QueueNS covers the work
	// between S3 and S4: executing transfers and stepping the data and
	// virtual queues.
	S1NS, S2NS, S3NS, QueueNS, S4NS int64
	// TotalNS is the whole Step, including observation and end-of-slot
	// aggregation (so it exceeds the sum of the stage fields).
	TotalNS int64
	// SchedLPSolves / SchedLPIterations are S1's LP work: solve count and
	// total simplex iterations (zero for LP-free schedulers like Greedy).
	SchedLPSolves, SchedLPIterations int
	// S4LPSolves / S4LPIterations are the energy-management LP work.
	S4LPSolves, S4LPIterations int
	// LPWarmStarts / LPBasisInvalidations aggregate the S1+S4 warm-start
	// counters (zero unless Config.WarmStartLP); they feed the
	// lp_warm_starts_total and lp_basis_invalidations_total metrics.
	LPWarmStarts, LPBasisInvalidations int
	// SchedObjective is Ψ̂1 = Σ_l H_l·c_l achieved by the S1 assignment.
	SchedObjective float64
}

// DriftAudit is the per-slot numerical check of Lemma 1: the realized
// drift ΔL must not exceed SquareTerms + CrossTerms, and SquareTerms must
// not exceed the a-priori constant B of eq. (34).
type DriftAudit struct {
	// LBefore and LAfter are L(Θ(t)) and L(Θ(t+1)).
	LBefore, LAfter float64
	// Drift is LAfter − LBefore.
	Drift float64
	// SquareTerms and CrossTerms are the realized right-hand-side pieces
	// (see package lyapunov).
	SquareTerms, CrossTerms float64
	// B is the Lemma 1 constant.
	B float64
}

// Holds reports whether both audited inequalities hold (with a relative
// tolerance for floating-point accumulation).
func (d *DriftAudit) Holds() bool {
	tol := 1e-9 * (1 + math.Abs(d.LBefore) + math.Abs(d.LAfter))
	return d.Drift <= d.SquareTerms+d.CrossTerms+tol && d.SquareTerms <= d.B+tol
}

// Controller is the online algorithm's mutable state Θ(t) plus the derived
// Lyapunov constants.
type Controller struct {
	cfg   Config
	sched sched.Scheduler

	// warmSched / warmS4 carry LP bases across slots when
	// Config.WarmStartLP is set; both stay nil otherwise, which keeps the
	// solvers on their cold, golden-pinned paths.
	warmSched *sched.WarmState
	warmS4    *energymgmt.WarmState

	// q[s][i] is Q_i^s(t); the destination's entry stays zero.
	q [][]queueing.Queue
	// fifos shadows q with packet ages when cfg.TrackDelay.
	fifos [][]queueing.PacketFIFO
	// delays accumulates per-session delivery-delay statistics.
	delays []queueing.DelayStats
	// h[l] is H_ij(t) per candidate link.
	h []queueing.Queue
	// batteries[i] is x_i(t).
	batteries []*energy.Battery

	// Lyapunov constants.
	beta     float64     // β = max_ij (1/δ)·c_ij^max·Δt  (packets/slot)
	gammaMax units.Price // γ_max = max f' over the grid-draw domain
	bConst   float64     // B of eq. (34)

	// capPktsMax[l] is (1/δ)·c_l^max·Δt, link l's best-case packets/slot.
	capPktsMax []float64

	slot int
}

// New builds a controller and validates the configuration.
func New(cfg Config) (*Controller, error) {
	if cfg.Net == nil {
		return nil, fmt.Errorf("%w: nil network", ErrConfig)
	}
	if cfg.Traffic == nil {
		return nil, fmt.Errorf("%w: nil traffic", ErrConfig)
	}
	if err := cfg.Traffic.Validate(cfg.Net.NumNodes()); err != nil {
		return nil, err
	}
	if cfg.V < 0 || cfg.Lambda < 0 {
		return nil, fmt.Errorf("%w: negative V or Lambda", ErrConfig)
	}
	if cfg.SlotSeconds <= 0 {
		return nil, fmt.Errorf("%w: SlotSeconds = %v", ErrConfig, cfg.SlotSeconds)
	}
	if cfg.Cost == nil {
		return nil, fmt.Errorf("%w: nil cost function", ErrConfig)
	}
	for _, s := range cfg.Traffic.Sessions {
		if s.Uplink {
			if cfg.Net.IsBS(s.Source) {
				return nil, fmt.Errorf("%w: uplink session %d source %d is a base station", ErrConfig, s.ID, s.Source)
			}
			continue
		}
		if cfg.Net.IsBS(s.Dest) {
			return nil, fmt.Errorf("%w: session %d destination %d is a base station", ErrConfig, s.ID, s.Dest)
		}
	}

	c := &Controller{cfg: cfg, sched: cfg.Scheduler}
	if c.sched == nil {
		c.sched = sched.SequentialFix{}
	}
	if cfg.WarmStartLP {
		c.warmSched = &sched.WarmState{}
		c.warmS4 = &energymgmt.WarmState{}
	}

	net := cfg.Net
	S := cfg.Traffic.NumSessions()
	c.q = make([][]queueing.Queue, S)
	for s := range c.q {
		c.q[s] = make([]queueing.Queue, net.NumNodes())
	}
	if cfg.TrackDelay {
		c.fifos = make([][]queueing.PacketFIFO, S)
		for s := range c.fifos {
			c.fifos[s] = make([]queueing.PacketFIFO, net.NumNodes())
		}
		c.delays = make([]queueing.DelayStats, S)
	}
	c.h = make([]queueing.Queue, len(net.Links))
	c.batteries = make([]*energy.Battery, net.NumNodes())
	for i, nd := range net.Nodes {
		b, err := energy.NewBattery(nd.Spec.Battery, nd.Spec.BatteryInitWh)
		if err != nil {
			return nil, fmt.Errorf("node %d: %w", i, err)
		}
		c.batteries[i] = b
	}

	c.deriveConstants()
	return c, nil
}

// deriveConstants computes β, γ_max, the per-link best-case packet
// capacities, and the drift constant B of eq. (34).
func (c *Controller) deriveConstants() {
	net := c.cfg.Net
	delta := c.cfg.Traffic.PacketBits
	dtSec := c.cfg.SlotSeconds

	c.capPktsMax = make([]float64, len(net.Links))
	for l, link := range net.Links {
		best := 0.0
		for _, b := range link.Bands {
			if r := net.Radio.Capacity(net.Spectrum.Bands[b].Width.Max().Hz()); r > best {
				best = r
			}
		}
		c.capPktsMax[l] = best * dtSec / delta
	}
	c.beta = 0
	for _, v := range c.capPktsMax {
		if v > c.beta {
			c.beta = v
		}
	}
	if c.beta == 0 {
		c.beta = 1 // degenerate networks with no links still need β > 0
	}

	totalPMax := units.Energy(0)
	for _, i := range net.BaseStations() {
		totalPMax += net.Nodes[i].Spec.Grid.MaxDrawWh
	}
	c.gammaMax = c.cfg.Cost.MaxDeriv(totalPMax)

	// B per eq. (34). maxServe/maxArrive are each node's best-case per-slot
	// packet service / arrival over its single radio.
	maxServe := make([]float64, net.NumNodes())
	maxArrive := make([]float64, net.NumNodes())
	for l, link := range net.Links {
		if c.capPktsMax[l] > maxServe[link.From] {
			maxServe[link.From] = c.capPktsMax[l]
		}
		if c.capPktsMax[l] > maxArrive[link.To] {
			maxArrive[link.To] = c.capPktsMax[l]
		}
	}
	b := 0.0
	for _, sess := range c.cfg.Traffic.Sessions {
		for i := range net.Nodes {
			arrive := maxArrive[i]
			if (!sess.Uplink && net.IsBS(i)) || (sess.Uplink && i == sess.Source) {
				// Any base station may be chosen as s_s(t) for a downlink
				// session; an uplink session admits at its fixed user.
				arrive += sess.MaxAdmission
			}
			b += 0.5 * (maxServe[i]*maxServe[i] + arrive*arrive)
		}
	}
	for l := range net.Links {
		v := c.beta * c.capPktsMax[l]
		b += v * v
	}
	for i := range net.Nodes {
		spec := net.Nodes[i].Spec.Battery
		m := spec.MaxChargeWh
		if spec.MaxDischargeWh > m {
			m = spec.MaxDischargeWh
		}
		b += 0.5 * m.Wh() * m.Wh()
	}
	c.bConst = b
}

// Beta returns β.
func (c *Controller) Beta() float64 { return c.beta }

// GammaMax returns γ_max.
func (c *Controller) GammaMax() units.Price { return c.gammaMax }

// B returns the drift constant of eq. (34); Theorem 5's lower bound is
// ψ*_P3̄ − B/V.
func (c *Controller) B() float64 { return c.bConst }

// V returns the configured drift-plus-penalty weight.
func (c *Controller) V() float64 { return c.cfg.V }

// SessionDelay returns the exact delivered-packet delay statistics of a
// session: packet-weighted mean and maximum, in slots. It returns zeros
// unless Config.TrackDelay was set.
func (c *Controller) SessionDelay(sessionIdx int) (mean, max, delivered float64) {
	if c.delays == nil {
		return 0, 0, 0
	}
	d := &c.delays[sessionIdx]
	return d.Mean(), d.Max(), d.Count()
}

// SessionDelayQuantile returns the q-quantile of a session's delivered-
// packet delay distribution in slots (0 unless Config.TrackDelay).
func (c *Controller) SessionDelayQuantile(sessionIdx int, q float64) float64 {
	if c.delays == nil {
		return 0
	}
	return c.delays[sessionIdx].Quantile(q)
}

// isSink reports whether node is a delivery point of session s: the fixed
// destination for downlink, any base station for uplink (anycast).
func (c *Controller) isSink(s, node int) bool {
	sess := c.cfg.Traffic.Sessions[s]
	if sess.Uplink {
		return c.cfg.Net.IsBS(node)
	}
	return node == sess.Dest
}

// QueueBacklog returns Q_i^s(t).
func (c *Controller) QueueBacklog(sessionIdx, node int) float64 {
	return c.q[sessionIdx][node].Backlog()
}

// VirtualBacklog returns H_ij(t) for candidate link l.
func (c *Controller) VirtualBacklog(l int) float64 { return c.h[l].Backlog() }

// BatteryLevel returns x_i(t).
func (c *Controller) BatteryLevel(node int) units.Energy { return c.batteries[node].Level() }

// ImportNodeView overwrites the controller's stored state for one node —
// its per-session data queues and its battery level — with externally
// observed values. The distributed coordinator (internal/machine,
// docs/DISTRIBUTED.md) uses it to replace its per-slot predictions with
// gossiped ground truth before deciding; under a perfect network the
// imported values equal the predictions bitwise, so the import is
// invisible to the fidelity gate. The virtual link queues H and the
// shifted-battery bookkeeping derive from the imported level on the next
// Step, so no other state needs touching.
func (c *Controller) ImportNodeView(node int, backlogs []float64, batteryWh units.Energy) error {
	if node < 0 || node >= c.cfg.Net.NumNodes() {
		return fmt.Errorf("%w: ImportNodeView node %d", ErrConfig, node)
	}
	if len(backlogs) != len(c.q) {
		return fmt.Errorf("%w: ImportNodeView got %d session backlogs, want %d",
			ErrConfig, len(backlogs), len(c.q))
	}
	for s := range c.q {
		c.q[s][node].Set(backlogs[s])
	}
	c.batteries[node].Reset(batteryWh)
	return nil
}

// ShiftedLevel returns z_i(t) = x_i(t) − V·γ_max − d_i^max.
func (c *Controller) ShiftedLevel(node int) units.Energy {
	return units.Wh(c.batteries[node].Level().Wh() - c.cfg.V*c.gammaMax.PerWh() -
		c.cfg.Net.Nodes[node].Spec.Battery.MaxDischargeWh.Wh())
}

// snapshot flattens Θ(t) for the Lyapunov audit.
func (c *Controller) snapshot() lyapunov.State {
	net := c.cfg.Net
	S := c.cfg.Traffic.NumSessions()
	st := lyapunov.State{
		Q: make([]float64, 0, S*net.NumNodes()),
		H: make([]float64, 0, len(net.Links)),
		Z: make([]float64, 0, net.NumNodes()),
	}
	for s := 0; s < S; s++ {
		for i := 0; i < net.NumNodes(); i++ {
			st.Q = append(st.Q, c.q[s][i].Backlog())
		}
	}
	for l := range net.Links {
		st.H = append(st.H, c.h[l].Backlog())
	}
	for i := 0; i < net.NumNodes(); i++ {
		st.Z = append(st.Z, c.ShiftedLevel(i).Wh())
	}
	return st
}

// Step advances the controller by one slot, drawing all randomness from src.
func (c *Controller) Step(src *rng.Source) (*SlotResult, error) {
	net := c.cfg.Net
	S := c.cfg.Traffic.NumSessions()
	dtH := c.cfg.SlotSeconds / 3600 // hours
	delta := c.cfg.Traffic.PacketBits

	res := &SlotResult{Slot: c.slot, DeliveredPkts: make([]float64, S)}

	// chk accumulates the slot's raw decisions for Config.Check; nil keeps
	// the snapshots off the control path.
	var chk *SlotCheck
	if c.cfg.Check != nil {
		chk = &SlotCheck{Slot: c.slot, Net: net, IsSink: c.isSink}
	}

	// Instrumentation is branch-only when off: st stays nil and no clock
	// is read, keeping the uninstrumented control path allocation-free.
	var st *StageBreakdown
	var t0, mark time.Time
	if c.cfg.Instrument {
		st = &StageBreakdown{}
		res.Stages = st
		t0 = time.Now()
		mark = t0
	}

	// --- Fault-injection and solve-budget state ------------------------
	// inj is nil-safe: a nil injector never fires. pastDeadline flips when
	// the slot's wall-clock budget is spent (organically, or virtually by
	// the injected Latency fault); from then on every stage takes its safe
	// action. overDeadline is checked before each stage solve.
	inj := c.cfg.Faults
	var deadlineAt time.Time
	pastDeadline := false
	if c.cfg.Budget.SlotDeadline > 0 {
		deadlineAt = time.Now().Add(c.cfg.Budget.SlotDeadline)
		if inj.Fires(faultinject.Latency, c.slot) {
			// Virtual latency spike: the budget is consumed up front —
			// nothing sleeps, so runs stay fast and bit-identical.
			pastDeadline = true
			res.markDegraded(CauseLatency)
		}
	}
	overDeadline := func() bool {
		if c.cfg.Budget.SlotDeadline <= 0 {
			return false
		}
		if !pastDeadline && time.Now().After(deadlineAt) {
			pastDeadline = true
			res.markDegraded(CauseDeadline)
		}
		return pastDeadline
	}

	// --- Observe the random state -------------------------------------
	env := c.cfg.Env
	if env == nil {
		env = DefaultEnvironment{}
	}
	obs := env.Observe(c.slot, src, net)
	c.injectObs(&obs)
	if sanitizeObs(&obs) {
		res.markDegraded(CauseObs)
	}
	// The scheduling/routing kernels run on bare float64; convert the
	// typed widths once per slot at the boundary.
	widthsHz := units.HzSlice(obs.Widths)
	renewWh := obs.RenewWh
	connected := obs.Connected
	for _, r := range renewWh {
		res.RenewableWh += r
	}
	if chk != nil {
		chk.Obs = obs
	}
	if st != nil {
		mark = time.Now() // exclude observation from the S1 timing
	}

	// --- S1: link scheduling -------------------------------------------
	weights := make([]float64, len(net.Links))
	for l := range net.Links {
		weights[l] = c.h[l].Backlog()
	}
	var txCap []float64
	if c.cfg.EnergyGate {
		txCap = make([]float64, net.NumNodes())
		for i, nd := range net.Nodes {
			availWh := renewWh[i] + c.batteries[i].DischargeHeadroom()
			if connected[i] {
				availWh += nd.Spec.Grid.MaxDrawWh
			}
			availWh -= (nd.Spec.ConstPowerW + nd.Spec.IdlePowerW).OverHours(dtH)
			capW := availWh.PerHours(dtH)
			if capW < 0 {
				capW = 0
			}
			if capW > nd.Spec.MaxTxPowerW {
				capW = nd.Spec.MaxTxPowerW
			}
			txCap[i] = capW.Watts()
		}
	}
	var asg *sched.Assignment
	var errS1 error
	switch {
	case overDeadline():
		asg = idleAssignment(net)
	case inj.Fires(faultinject.S1Infeasible, c.slot):
		errS1 = fmt.Errorf("%w: %w", sched.ErrInfeasible, inj.Error(faultinject.S1Infeasible, c.slot))
	case inj.Fires(faultinject.S1IterLimit, c.slot):
		errS1 = fmt.Errorf("%w: %w", sched.ErrIterationLimit, inj.Error(faultinject.S1IterLimit, c.slot))
	default:
		asg, errS1 = c.sched.Schedule(&sched.Request{
			Net:             net,
			Widths:          widthsHz,
			Weights:         weights,
			TxPowerCap:      txCap,
			MaxLPIterations: c.cfg.Budget.MaxLPIterations,
			Warm:            c.warmSched,
		})
	}
	if errS1 != nil {
		cause := solveCause(errS1, CauseS1Infeasible, CauseS1IterLimit, CauseS1Infeasible)
		if cause == "" {
			return nil, fmt.Errorf("slot %d: %w", c.slot, errS1)
		}
		res.markDegraded(cause)
		asg = idleAssignment(net)
	}
	// capPkts is the scheduled service of the virtual queues H (eq. (30)).
	// routeCap is the routing cap per link: the capacity the link would
	// have on its best currently-available band. The paper's P2 replaces
	// the per-slot capacity constraint (25) by its time average (27),
	// which the strong stability of H enforces; routing therefore ships up
	// to the potential capacity while H accumulates any deficit between
	// routed load and scheduled service (see DESIGN.md).
	capPkts := make([]float64, len(net.Links))
	routeCap := make([]float64, len(net.Links))
	for l, link := range net.Links {
		capPkts[l] = asg.RateBits[l] * c.cfg.SlotSeconds / delta
		if asg.Activity[l] > 0 {
			res.ScheduledLinks++
		}
		best := 0.0
		for _, b := range link.Bands {
			if r := net.Radio.Capacity(widthsHz[b]); r > best {
				best = r
			}
		}
		routeCap[l] = best * c.cfg.SlotSeconds / delta
	}
	if st != nil {
		now := time.Now()
		st.S1NS = now.Sub(mark).Nanoseconds()
		mark = now
		st.SchedLPSolves = asg.Stats.LPSolves
		st.SchedLPIterations = asg.Stats.LPIterations
		st.LPWarmStarts += asg.Stats.WarmStarts
		st.LPBasisInvalidations += asg.Stats.BasisInvalidations
		st.SchedObjective = asg.Objective(weights)
	}

	// --- S2: resource allocation ----------------------------------------
	var dec2 *alloc.Decision
	var errS2 error
	switch {
	case overDeadline():
		dec2 = c.safeAllocation()
	case inj.Fires(faultinject.S2Fail, c.slot):
		errS2 = inj.Error(faultinject.S2Fail, c.slot)
	default:
		dec2, errS2 = alloc.Decide(&alloc.Request{
			Sessions:     c.cfg.Traffic.Sessions,
			BaseStations: net.BaseStations(),
			Backlog:      func(s, node int) float64 { return c.q[s][node].Backlog() },
			LambdaV:      c.cfg.Lambda * c.cfg.V,
		})
	}
	if errS2 != nil {
		// alloc has no solver: organic errors are request bugs and abort;
		// only injected failures degrade.
		cause := solveCause(errS2, CauseS2Fault, CauseS2Fault, CauseS2Fault)
		if cause == "" {
			return nil, fmt.Errorf("slot %d: %w", c.slot, errS2)
		}
		res.markDegraded(cause)
		dec2 = c.safeAllocation()
	}
	if st != nil {
		now := time.Now()
		st.S2NS = now.Sub(mark).Nanoseconds()
		mark = now
	}

	// --- S3: routing ------------------------------------------------------
	dest := make([]int, S)
	demand := make([]float64, S)
	for s, sess := range c.cfg.Traffic.Sessions {
		dest[s] = sess.Dest
		demand[s] = sess.DemandAt(c.slot)
	}
	hBacklog := make([]float64, len(net.Links))
	for l := range net.Links {
		hBacklog[l] = c.h[l].Backlog()
	}
	var dec3 *routing.Decision
	var errS3 error
	switch {
	case overDeadline():
		dec3 = c.safeRouting()
	case inj.Fires(faultinject.S3Fail, c.slot):
		errS3 = inj.Error(faultinject.S3Fail, c.slot)
	default:
		dec3, errS3 = routing.Decide(&routing.Request{
			Net:         net,
			NumSessions: S,
			Backlog: func(s, node int) float64 {
				if c.isSink(s, node) {
					return 0
				}
				return c.q[s][node].Backlog()
			},
			H:            hBacklog,
			Beta:         c.beta,
			CapacityPkts: routeCap,
			Dest:         dest,
			Source:       dec2.Source,
			Sink:         c.isSink,
			DemandPkts:   demand,
		})
	}
	if errS3 != nil {
		// routing is solver-free like alloc: only injected failures degrade.
		cause := solveCause(errS3, CauseS3Fault, CauseS3Fault, CauseS3Fault)
		if cause == "" {
			return nil, fmt.Errorf("slot %d: %w", c.slot, errS3)
		}
		res.markDegraded(cause)
		dec3 = c.safeRouting()
	}
	if st != nil {
		now := time.Now()
		st.S3NS = now.Sub(mark).Nanoseconds()
		mark = now
	}
	if chk != nil {
		chk.Assignment = asg
		chk.RouteCapPkts = routeCap
		chk.Admit = dec2.Admit
		chk.Source = dec2.Source
		chk.DemandPkts = demand
		chk.Flow = dec3.Flow
		chk.QBefore = make([][]float64, S)
		for s := 0; s < S; s++ {
			chk.QBefore[s] = make([]float64, net.NumNodes())
			for i := range net.Nodes {
				chk.QBefore[s][i] = c.q[s][i].Backlog()
			}
		}
	}

	// Execute transfers: ship only packets that exist, decrementing each
	// upstream backlog as flows are granted so a node's several out-links
	// cannot ship the same packets twice (see DESIGN.md).
	actual := make([][]float64, len(net.Links))
	for l := range net.Links {
		actual[l] = make([]float64, S)
	}
	remaining := make([]float64, net.NumNodes())
	// Grant destination-bound flows first: they realize throughput.
	grant := func(s, l int, link topology.Link) {
		f := dec3.Flow[l][s]
		if f <= 0 {
			return
		}
		if f > remaining[link.From] {
			f = remaining[link.From]
		}
		actual[l][s] = f
		remaining[link.From] -= f
	}
	for s := 0; s < S; s++ {
		for i := range net.Nodes {
			remaining[i] = c.q[s][i].Backlog()
		}
		for l, link := range net.Links {
			if c.isSink(s, link.To) {
				grant(s, l, link)
			}
		}
		for l, link := range net.Links {
			if !c.isSink(s, link.To) {
				grant(s, l, link)
			}
		}
	}

	// --- Queue updates (data + virtual) ----------------------------------
	var audit *lyapunov.Audit
	var before lyapunov.State
	if c.cfg.AuditDrift {
		audit = &lyapunov.Audit{}
		before = c.snapshot()
	}
	arrivals := make([]float64, net.NumNodes())
	services := make([]float64, net.NumNodes())
	for s := 0; s < S; s++ {
		clear(arrivals)
		clear(services)
		for l, link := range net.Links {
			a := actual[l][s]
			if a == 0 {
				continue
			}
			services[link.From] += a
			if c.isSink(s, link.To) {
				res.DeliveredPkts[s] += a
			} else {
				arrivals[link.To] += a
			}
		}
		arrivals[dec2.Source[s]] += dec2.Admit[s]
		res.AdmittedPkts += dec2.Admit[s]
		if c.fifos != nil {
			// Move packet ages along the same transfers: pop each link's
			// shipment from the upstream FIFO, record delays at the
			// destination, re-queue elsewhere; then add the admissions.
			for l, link := range net.Links {
				a := actual[l][s]
				if a == 0 {
					continue
				}
				batches := c.fifos[s][link.From].Pop(a)
				if c.isSink(s, link.To) {
					c.delays[s].Record(c.slot, batches)
				} else {
					c.fifos[s][link.To].PushBatches(batches)
				}
			}
			c.fifos[s][dec2.Source[s]].Push(dec2.Admit[s], c.slot)
		}
		for i := range net.Nodes {
			if c.isSink(s, i) {
				continue
			}
			if audit != nil {
				audit.AddQueue(lyapunov.Flow{
					Backlog: c.q[s][i].Backlog(),
					Arrival: arrivals[i],
					Service: services[i],
				})
			}
			c.q[s][i].Step(arrivals[i], services[i])
		}
	}
	for l := range net.Links {
		flow := 0.0
		for s := 0; s < S; s++ {
			flow += actual[l][s]
		}
		if audit != nil {
			audit.AddQueue(lyapunov.Flow{
				Backlog: c.h[l].Backlog(),
				Arrival: c.beta * flow,
				Service: c.beta * capPkts[l],
			})
		}
		c.h[l].Step(c.beta*flow, c.beta*capPkts[l])
	}
	if st != nil {
		now := time.Now()
		st.QueueNS = now.Sub(mark).Nanoseconds()
		mark = now
	}

	// --- Energy accounting: E_i(t) per eqs. (2) and (23) ------------------
	demandWh := make([]units.Energy, net.NumNodes())
	for i, nd := range net.Nodes {
		demandWh[i] = (nd.Spec.ConstPowerW + nd.Spec.IdlePowerW).OverHours(dtH)
	}
	for l, link := range net.Links {
		if asg.Activity[l] <= 0 {
			continue
		}
		tx := units.Watts(asg.PowerW[l]).OverHours(dtH)
		rx := net.Nodes[link.To].Spec.RecvPowerW.Scale(asg.Activity[l]).OverHours(dtH)
		demandWh[link.From] += tx
		demandWh[link.To] += rx
		res.TxEnergyWh += tx + rx
	}
	for _, d := range demandWh {
		res.DemandWh += d
	}

	// --- S4: energy management -------------------------------------------
	inputs := make([]energymgmt.NodeInput, net.NumNodes())
	for i, nd := range net.Nodes {
		inputs[i] = energymgmt.NodeInput{
			Z:                   c.ShiftedLevel(i),
			DemandWh:            demandWh[i],
			RenewableWh:         renewWh[i],
			ChargeHeadroomWh:    c.batteries[i].ChargeHeadroom(),
			DischargeHeadroomWh: c.batteries[i].DischargeHeadroom(),
			GridConnected:       connected[i],
			GridCapWh:           nd.Spec.Grid.MaxDrawWh,
			IsBS:                net.IsBS(i),
		}
	}
	req4 := &energymgmt.Request{
		Nodes:           inputs,
		V:               c.cfg.V,
		Cost:            c.cfg.Cost,
		MaxLPIterations: c.cfg.Budget.MaxLPIterations,
		Warm:            c.warmS4,
	}
	var dec4 *energymgmt.Decision
	var errS4 error
	switch {
	case overDeadline():
		dec4 = energymgmt.SafeDecision(req4)
	case inj.Fires(faultinject.S4Infeasible, c.slot):
		errS4 = fmt.Errorf("%w: %w", energymgmt.ErrInfeasible, inj.Error(faultinject.S4Infeasible, c.slot))
	case inj.Fires(faultinject.S4IterLimit, c.slot):
		errS4 = fmt.Errorf("%w: %w", energymgmt.ErrIterationLimit, inj.Error(faultinject.S4IterLimit, c.slot))
	default:
		dec4, errS4 = energymgmt.Solve(req4)
	}
	if errS4 != nil {
		cause := solveCause(errS4, CauseS4Infeasible, CauseS4IterLimit, CauseS4Infeasible)
		if cause == "" {
			return nil, fmt.Errorf("slot %d: %w", c.slot, errS4)
		}
		res.markDegraded(cause)
		dec4 = energymgmt.SafeDecision(req4)
	}
	if chk != nil {
		chk.Actual = actual
		chk.DemandWh = demandWh
		chk.Energy = dec4
		chk.BatteryBeforeWh = make([]units.Energy, net.NumNodes())
		chk.ChargeHeadroomWh = make([]units.Energy, net.NumNodes())
		chk.DischargeHeadroomWh = make([]units.Energy, net.NumNodes())
		for i := range net.Nodes {
			chk.BatteryBeforeWh[i] = c.batteries[i].Level()
			chk.ChargeHeadroomWh[i] = c.batteries[i].ChargeHeadroom()
			chk.DischargeHeadroomWh[i] = c.batteries[i].DischargeHeadroom()
		}
	}
	for i := range net.Nodes {
		nd := dec4.Nodes[i]
		zBefore := c.ShiftedLevel(i)
		lvlBefore := c.batteries[i].Level()
		if err := c.batteries[i].Step(nd.ChargeWh(), nd.DischargeWh); err != nil {
			return nil, fmt.Errorf("slot %d node %d: %w", c.slot, i, err)
		}
		if audit != nil {
			// Use the realized level change so storage losses (extension)
			// stay consistent with z' = z + Δx.
			audit.AddSigned(zBefore.Wh(), (c.batteries[i].Level() - lvlBefore).Wh(), 0)
		}
	}
	if st != nil {
		st.S4NS = time.Since(mark).Nanoseconds()
		st.S4LPSolves = dec4.LPSolves
		st.S4LPIterations = dec4.LPIterations
		st.LPWarmStarts += dec4.WarmStarts
		st.LPBasisInvalidations += dec4.BasisInvalidations
	}
	if audit != nil {
		after := c.snapshot()
		res.Audit = &DriftAudit{
			LBefore:     lyapunov.Value(before),
			LAfter:      lyapunov.Value(after),
			Drift:       lyapunov.Drift(before, after),
			SquareTerms: audit.SquareTerms,
			CrossTerms:  audit.CrossTerms,
			B:           c.bConst,
		}
	}

	res.GridWh = dec4.GridTotalWh
	res.EnergyCost = dec4.EnergyCost
	res.DeficitWh = dec4.TotalDeficitWh
	res.MarginalPriceWh = dec4.MarginalPriceWh
	res.PenaltyObjective = res.EnergyCost.Value() - c.cfg.Lambda*res.AdmittedPkts
	for _, sess := range c.cfg.Traffic.Sessions {
		res.OfferedPkts += sess.MaxAdmission
	}
	res.DroppedPkts = res.OfferedPkts - res.AdmittedPkts

	// --- End-of-slot aggregates -------------------------------------------
	for s := 0; s < S; s++ {
		for i := range net.Nodes {
			b := c.q[s][i].Backlog()
			if net.IsBS(i) {
				res.DataBacklogBS += b
			} else {
				res.DataBacklogUsers += b
			}
		}
	}
	for i := range net.Nodes {
		lvl := c.batteries[i].Level()
		if net.IsBS(i) {
			res.BatteryWhBS += lvl
		} else {
			res.BatteryWhUsers += lvl
		}
		res.ShiftedEnergyAbsZ += units.Wh(math.Abs(c.ShiftedLevel(i).Wh()))
	}
	for l := range net.Links {
		res.VirtualBacklogH += c.h[l].Backlog()
	}
	if st != nil {
		st.TotalNS = time.Since(t0).Nanoseconds()
	}
	if chk != nil {
		chk.BatteryAfterWh = make([]units.Energy, net.NumNodes())
		for i := range net.Nodes {
			chk.BatteryAfterWh[i] = c.batteries[i].Level()
		}
		if err := c.cfg.Check(chk); err != nil {
			return nil, fmt.Errorf("slot %d: %w", c.slot, err)
		}
	}

	c.slot++
	return res, nil
}
