package core

import (
	"math"
	"testing"

	"greencell/internal/energy"
	"greencell/internal/queueing"
	"greencell/internal/rng"
	"greencell/internal/sched"
	"greencell/internal/topology"
	"greencell/internal/traffic"
	"greencell/internal/units"
)

// smallConfig builds a fast 8-user scenario for integration tests.
func smallConfig(t *testing.T, seed int64) (Config, *topology.Network) {
	t.Helper()
	tcfg := topology.Paper()
	tcfg.NumUsers = 8
	tcfg.MaxNeighbors = 4
	src := rng.New(seed)
	net, err := topology.Build(tcfg, src.Split("topology"))
	if err != nil {
		t.Fatal(err)
	}
	tm := traffic.PaperSessions(2, net.Users(), 60, src.Split("traffic"))
	return Config{
		Net:         net,
		Traffic:     tm,
		V:           1e5,
		Lambda:      0.0006,
		SlotSeconds: 60,
		Cost:        energy.PaperCost(),
		EnergyGate:  true,
	}, net
}

func TestNewValidation(t *testing.T) {
	cfg, net := smallConfig(t, 1)

	bad := cfg
	bad.Net = nil
	if _, err := New(bad); err == nil {
		t.Error("nil network accepted")
	}
	bad = cfg
	bad.Traffic = nil
	if _, err := New(bad); err == nil {
		t.Error("nil traffic accepted")
	}
	bad = cfg
	bad.V = -1
	if _, err := New(bad); err == nil {
		t.Error("negative V accepted")
	}
	bad = cfg
	bad.SlotSeconds = 0
	if _, err := New(bad); err == nil {
		t.Error("zero slot accepted")
	}
	bad = cfg
	bad.Cost = nil
	if _, err := New(bad); err == nil {
		t.Error("nil cost accepted")
	}
	bad = cfg
	bad.Traffic = &traffic.Model{
		PacketBits: 100,
		Sessions:   []traffic.Session{{Dest: net.BaseStations()[0], DemandPkts: 1, MaxAdmission: 1}},
	}
	if _, err := New(bad); err == nil {
		t.Error("base-station destination accepted")
	}
}

func TestDerivedConstants(t *testing.T) {
	cfg, net := smallConfig(t, 2)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.B() <= 0 || c.Beta() <= 0 {
		t.Errorf("B = %v, beta = %v, want positive", c.B(), c.Beta())
	}
	// β = max link capacity in packets: 2 MHz * log2(2) * 60s / δ.
	wantBeta := 2e6 * 60 / cfg.Traffic.PacketBits
	if math.Abs(c.Beta()-wantBeta) > 1e-9 {
		t.Errorf("beta = %v, want %v", c.Beta(), wantBeta)
	}
	pMax := units.Energy(0)
	for _, b := range net.BaseStations() {
		pMax += net.Nodes[b].Spec.Grid.MaxDrawWh
	}
	if got, want := c.GammaMax(), cfg.Cost.MaxDeriv(pMax); got != want {
		t.Errorf("gammaMax = %v, want %v", got, want)
	}
	// z_i(0) = x_i(0) − V·γmax − d_i^max.
	want := net.Nodes[0].Spec.BatteryInitWh.Wh() - cfg.V*c.GammaMax().PerWh() - net.Nodes[0].Spec.Battery.MaxDischargeWh.Wh()
	if got := c.ShiftedLevel(0).Wh(); math.Abs(got-want) > 1e-6 {
		t.Errorf("ShiftedLevel(0) = %v, want %v", got, want)
	}
}

func TestStepInvariants(t *testing.T) {
	cfg, net := smallConfig(t, 3)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(99)
	admitted := make([]float64, cfg.Traffic.NumSessions())
	delivered := make([]float64, cfg.Traffic.NumSessions())
	for slot := 0; slot < 30; slot++ {
		res, err := c.Step(src)
		if err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
		if res.Slot != slot {
			t.Fatalf("slot index %d, want %d", res.Slot, slot)
		}
		if res.GridWh < -1e-9 || res.EnergyCost < -1e-9 {
			t.Fatalf("negative grid/cost: %+v", res)
		}
		if res.DeficitWh > 1e-6 {
			t.Fatalf("slot %d: energy deficit %v with gate enabled", slot, res.DeficitWh)
		}
		for s, d := range res.DeliveredPkts {
			delivered[s] += d
		}
		// Per-session admission is recoverable from the aggregate only in
		// the 1-session case; accumulate the total instead.
		admitted[0] += res.AdmittedPkts

		for s := 0; s < cfg.Traffic.NumSessions(); s++ {
			for i := range net.Nodes {
				if q := c.QueueBacklog(s, i); q < 0 {
					t.Fatalf("negative backlog Q[%d][%d] = %v", s, i, q)
				}
				if i == cfg.Traffic.Sessions[s].Dest && c.QueueBacklog(s, i) != 0 {
					t.Fatalf("destination keeps a queue")
				}
			}
		}
		for i := range net.Nodes {
			lvl := c.BatteryLevel(i)
			cap := net.Nodes[i].Spec.Battery.CapacityWh
			if lvl < -1e-9 || lvl > cap+1e-9 {
				t.Fatalf("battery %d level %v outside [0,%v]", i, lvl, cap)
			}
		}
		for l := range net.Links {
			if c.VirtualBacklog(l) < 0 {
				t.Fatalf("negative virtual backlog on link %d", l)
			}
		}
	}

	// Packet conservation: everything admitted is either delivered or
	// still queued somewhere.
	queued := 0.0
	for s := 0; s < cfg.Traffic.NumSessions(); s++ {
		for i := range net.Nodes {
			queued += c.QueueBacklog(s, i)
		}
	}
	totalDelivered := 0.0
	for _, d := range delivered {
		totalDelivered += d
	}
	if math.Abs(admitted[0]-(totalDelivered+queued)) > 1e-6*(1+admitted[0]) {
		t.Errorf("packet conservation: admitted %v != delivered %v + queued %v",
			admitted[0], totalDelivered, queued)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		cfg, _ := smallConfig(t, 5)
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		src := rng.New(123)
		var out []float64
		for slot := 0; slot < 10; slot++ {
			res, err := c.Step(src)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res.EnergyCost.Value(), res.AdmittedPkts, res.DataBacklogBS, res.BatteryWhBS.Wh())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestZeroVAdmitsNothing(t *testing.T) {
	cfg, _ := smallConfig(t, 6)
	cfg.V = 0 // λV = 0: Q < 0 never holds, so no admission.
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(7)
	for slot := 0; slot < 5; slot++ {
		res, err := c.Step(src)
		if err != nil {
			t.Fatal(err)
		}
		if res.AdmittedPkts != 0 {
			t.Fatalf("V=0 admitted %v packets", res.AdmittedPkts)
		}
	}
}

func TestSchedulerChoiceAffectsOnlySchedule(t *testing.T) {
	// Greedy vs SF must both run clean; their costs may differ.
	for _, s := range []sched.Scheduler{sched.Greedy{}, sched.SequentialFix{}} {
		cfg, _ := smallConfig(t, 8)
		cfg.Scheduler = s
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		src := rng.New(8)
		for slot := 0; slot < 10; slot++ {
			if _, err := c.Step(src); err != nil {
				t.Fatalf("%T: %v", s, err)
			}
		}
	}
}

// TestStrongStabilityEmpirical runs the controller long enough for the
// backlog trajectories to flatten: the empirical counterpart of Theorem 3.
func TestStrongStabilityEmpirical(t *testing.T) {
	if testing.Short() {
		t.Skip("long horizon")
	}
	cfg, _ := smallConfig(t, 9)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(9)
	var qTrace []float64
	const T = 400
	for slot := 0; slot < T; slot++ {
		res, err := c.Step(src)
		if err != nil {
			t.Fatal(err)
		}
		qTrace = append(qTrace, res.DataBacklogBS+res.DataBacklogUsers)
	}
	// The tail growth must be a small fraction of the per-slot demand.
	demand := 0.0
	for _, s := range cfg.Traffic.Sessions {
		demand += s.DemandPkts
	}
	slope := queueing.Slope(qTrace[T/2:])
	if slope > demand/2 {
		t.Errorf("tail backlog slope %v suggests instability (demand %v/slot)", slope, demand)
	}
}
