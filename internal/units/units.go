// Package units defines zero-cost physical-quantity types for the paper's
// per-slot control loop. Each type is a defined type over float64 — no
// wrapper structs, no interface boxing — so values marshal to JSON, compare,
// and compute exactly like the bare float64 they replace. What the types buy
// is compile-time (and, via the unitmix analyzer, lint-time) separation of
// quantities that the paper never mixes:
//
//	Quantity   Paper symbol / equation                      Unit here
//	--------   ------------------------------------------   -----------------
//	Energy     x_i(t), R_i(t), c_i(t), d_i(t), P(t);        watt-hours / slot
//	           eqs. (2), (4), (9)–(14)
//	Power      p_i^max, P_ij(t); eqs. (16), (23)            watts
//	Bandwidth  W_m(t); Section II-A                         hertz
//	Rate       c_ij(t) = W·log2(1+SINR); eq. (1)            bits / second
//	Cost       f(P(t)); Section II-E                        cost units
//	Price      γ_max = max f'(P), marginal prices;          cost / Wh
//	           the z_i(t) shift of eq. (19)
//
// Conversions between quantities are explicit methods (Power.OverHours,
// Energy.PerHours, Price.ForEnergy, ...). Raw casts such as float64(e) or
// Energy(p) outside this package are flagged by the unitmix analyzer
// (docs/ANALYSIS.md); use the accessor methods instead so every unit
// boundary is named at the call site.
//
// All arithmetic helpers preserve the exact float64 operation order of the
// expressions they replace — the refactor that introduced this package is
// bit-identical on the fixed-seed metrics stream (make units-check).
package units

// Energy is an amount of energy, in watt-hours. Per-slot quantities —
// battery levels x_i(t), renewable arrivals R_i(t), charges c_i(t),
// discharges d_i(t), grid draws — are all energies per slot.
type Energy float64

// Power is an instantaneous power, in watts (transmit powers P_ij(t),
// receive/idle/constant circuit powers, the caps p_i^max).
type Power float64

// Bandwidth is a spectrum width W_m(t), in hertz.
type Bandwidth float64

// Rate is a link rate c_ij(t), in bits per second.
type Rate float64

// Cost is a value of the provider's generation cost f(P), in the paper's
// (dimensionless) cost units.
type Cost float64

// Price is a marginal cost per unit energy — f'(P) and the γ_max shift of
// eq. (19) — in cost units per watt-hour.
type Price float64

// Constructors: the named way to move a bare float64 into the unit system.

// Wh returns v watt-hours as an Energy.
func Wh(v float64) Energy { return Energy(v) }

// Joules returns v joules as an Energy (1 Wh = 3600 J).
func Joules(v float64) Energy { return Energy(v / 3600) }

// Watts returns v watts as a Power.
func Watts(v float64) Power { return Power(v) }

// Hz returns v hertz as a Bandwidth.
func Hz(v float64) Bandwidth { return Bandwidth(v) }

// BitsPerSec returns v bits/second as a Rate.
func BitsPerSec(v float64) Rate { return Rate(v) }

// CostOf returns v cost units as a Cost.
func CostOf(v float64) Cost { return Cost(v) }

// PricePerWh returns v cost-units-per-Wh as a Price.
func PricePerWh(v float64) Price { return Price(v) }

// Accessors: the named way back out. Each is the identity on the underlying
// float64 (except Energy.Joules, which scales).

// Wh returns the energy in watt-hours.
func (e Energy) Wh() float64 { return float64(e) }

// Joules returns the energy in joules.
func (e Energy) Joules() float64 { return float64(e) * 3600 }

// Watts returns the power in watts.
func (p Power) Watts() float64 { return float64(p) }

// Hz returns the bandwidth in hertz.
func (b Bandwidth) Hz() float64 { return float64(b) }

// BitsPerSec returns the rate in bits per second.
func (r Rate) BitsPerSec() float64 { return float64(r) }

// Value returns the cost in cost units.
func (c Cost) Value() float64 { return float64(c) }

// PerWh returns the price in cost units per watt-hour.
func (p Price) PerWh() float64 { return float64(p) }

// Cross-quantity conversions. Each method documents — and the unitmix
// analyzer enforces — the only sanctioned ways quantities combine.

// OverHours returns the energy delivered by drawing power p for h hours:
// W × h → Wh. h is a dimensionless slot duration expressed in hours
// (SlotSeconds/3600 in the simulator).
func (p Power) OverHours(h float64) Energy { return Energy(float64(p) * h) }

// PerHours returns the constant power that delivers energy e over h hours:
// Wh ÷ h → W.
func (e Energy) PerHours(h float64) Power { return Power(float64(e) / h) }

// ForEnergy returns the cost of energy e at price p: (cost/Wh) × Wh → cost.
func (p Price) ForEnergy(e Energy) Cost { return Cost(float64(p) * float64(e)) }

// Scale returns the energy scaled by the dimensionless factor k.
func (e Energy) Scale(k float64) Energy { return Energy(float64(e) * k) }

// Scale returns the power scaled by the dimensionless factor k.
func (p Power) Scale(k float64) Power { return Power(float64(p) * k) }

// Scale returns the price scaled by the dimensionless factor k (e.g. the
// drift weight V multiplying f'(P) in S4's objective).
func (p Price) Scale(k float64) Price { return Price(float64(p) * k) }

// Slice helpers for the float64 kernel boundary: the LP/scheduling kernels
// (internal/sched, internal/lp, internal/radio, ...) deliberately stay on
// bare float64; callers convert once per slot at the boundary.

// HzSlice converts a bandwidth slice to bare hertz values.
func HzSlice(ws []Bandwidth) []float64 {
	out := make([]float64, len(ws))
	for i, w := range ws {
		out[i] = w.Hz()
	}
	return out
}

// WhSlice converts an energy slice to bare watt-hour values.
func WhSlice(es []Energy) []float64 {
	out := make([]float64, len(es))
	for i, e := range es {
		out[i] = e.Wh()
	}
	return out
}

// EnergiesWh wraps bare watt-hour values as an Energy slice.
func EnergiesWh(vs []float64) []Energy {
	out := make([]Energy, len(vs))
	for i, v := range vs {
		out[i] = Wh(v)
	}
	return out
}

// BandwidthsHz wraps bare hertz values as a Bandwidth slice.
func BandwidthsHz(vs []float64) []Bandwidth {
	out := make([]Bandwidth, len(vs))
	for i, v := range vs {
		out[i] = Hz(v)
	}
	return out
}
