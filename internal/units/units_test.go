package units

import (
	"encoding/json"
	"math"
	"testing"
)

// TestZeroCostRepresentation pins the property the whole refactor rests on:
// a defined type over float64 has the identical bit pattern and the
// identical JSON encoding as the bare float64 it wraps.
func TestZeroCostRepresentation(t *testing.T) {
	vals := []float64{0, 1, -1, 0.0006, 1e5, math.Pi, 3.3e-4, math.MaxFloat64}
	for _, v := range vals {
		if got := Wh(v).Wh(); math.Float64bits(got) != math.Float64bits(v) {
			t.Errorf("Wh round-trip changed bits: %v -> %v", v, got)
		}
		raw, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		typed, err := json.Marshal(Wh(v))
		if err != nil {
			t.Fatal(err)
		}
		if string(raw) != string(typed) {
			t.Errorf("JSON differs for %v: raw %s typed %s", v, raw, typed)
		}
	}
}

func TestConstructorAccessorIdentity(t *testing.T) {
	const v = 123.456
	cases := []struct {
		name string
		got  float64
	}{
		{"Wh", Wh(v).Wh()},
		{"Watts", Watts(v).Watts()},
		{"Hz", Hz(v).Hz()},
		{"BitsPerSec", BitsPerSec(v).BitsPerSec()},
		{"CostOf", CostOf(v).Value()},
		{"PricePerWh", PricePerWh(v).PerWh()},
	}
	for _, c := range cases {
		if c.got != v {
			t.Errorf("%s: got %v want %v", c.name, c.got, v)
		}
	}
}

func TestJoules(t *testing.T) {
	if got := Joules(3600).Wh(); got != 1 {
		t.Errorf("Joules(3600) = %v Wh, want 1", got)
	}
	if got := Wh(2).Joules(); got != 7200 {
		t.Errorf("Wh(2).Joules() = %v, want 7200", got)
	}
}

// TestConversionsMatchRawArithmetic checks each cross-quantity helper
// reproduces the exact float64 expression it replaced in the controller.
func TestConversionsMatchRawArithmetic(t *testing.T) {
	p, h := 12.7, 1.0/60
	if got, want := Watts(p).OverHours(h).Wh(), p*h; math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("OverHours: %v != %v", got, want)
	}
	e := 0.31
	if got, want := Wh(e).PerHours(h).Watts(), e/h; math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("PerHours: %v != %v", got, want)
	}
	pr := 5.5
	if got, want := PricePerWh(pr).ForEnergy(Wh(e)).Value(), pr*e; math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("ForEnergy: %v != %v", got, want)
	}
	k := 0.25
	if got, want := Wh(e).Scale(k).Wh(), e*k; math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("Energy.Scale: %v != %v", got, want)
	}
}

func TestSliceHelpers(t *testing.T) {
	ws := []Bandwidth{Hz(1e6), Hz(2e6)}
	hz := HzSlice(ws)
	if len(hz) != 2 || hz[0] != 1e6 || hz[1] != 2e6 {
		t.Errorf("HzSlice = %v", hz)
	}
	es := EnergiesWh([]float64{1, 2, 3})
	wh := WhSlice(es)
	if len(wh) != 3 || wh[0] != 1 || wh[2] != 3 {
		t.Errorf("WhSlice round-trip = %v", wh)
	}
	bs := BandwidthsHz([]float64{5, 6})
	if len(bs) != 2 || bs[1].Hz() != 6 {
		t.Errorf("BandwidthsHz = %v", bs)
	}
}
