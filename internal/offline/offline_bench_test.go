package offline

import (
	"testing"

	"greencell/internal/energy"
)

// BenchmarkSolve measures the clairvoyant solver on the 3-node, T=3
// instance (64 schedule combinations, one joint LP each).
func BenchmarkSolve(b *testing.B) {
	net, tm := tinySetup(b)
	inst := &Instance{
		Net:         net,
		Traffic:     tm,
		SlotSeconds: 60,
		Cost:        energy.Quadratic{A: 0.5, B: 0.1},
		Lambda:      0.05,
		Realization: fixedRealization(net, 3),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(inst); err != nil {
			b.Fatal(err)
		}
	}
}
