// Package offline solves the paper's *offline* problem — the clairvoyant
// counterpart of P2 — exactly (up to documented relaxations) on small
// instances, by enumerating the integral link schedules of every slot and
// solving one joint linear program over flows, admissions, queues, and
// energy for each schedule combination.
//
// The paper never compares its online algorithm against the true offline
// optimum (it is a time-coupled stochastic MINLP); on toy instances this
// package makes that comparison possible: the online controller's realized
// objective on a fixed realization must dominate the clairvoyant optimum
// computed here.
//
// Relaxations (each one only *lowers* the computed optimum, so the value
// remains a valid lower bound on the true offline optimum):
//
//   - flows l_ij^s and admissions k_s are continuous;
//   - the one-source-per-session constraint (19) is relaxed to admission
//     split across base stations;
//   - the convex cost f enters through tangent (supporting-hyperplane)
//     cuts, an under-approximation that tightens as CostCuts grows.
//
// Schedules α stay integral: every per-slot pattern satisfies the
// single-radio constraint (22) and the SINR constraint (24) at the power
// caps, with transmission powers minimized by power control.
package offline

import (
	"errors"
	"fmt"
	"math"

	"greencell/internal/core"
	"greencell/internal/energy"
	"greencell/internal/lp"
	"greencell/internal/radio"
	"greencell/internal/topology"
	"greencell/internal/traffic"
	"greencell/internal/units"
)

// Instance is one clairvoyant problem.
type Instance struct {
	Net         *topology.Network
	Traffic     *traffic.Model
	SlotSeconds float64
	Cost        energy.CostFunc
	Lambda      float64
	// Realization is the fixed per-slot random state (widths, renewables,
	// connectivity); its length is the horizon T.
	Realization []core.Observation
	// RequireDrain forces all admitted packets to be delivered by the end
	// of the horizon (Q(T) = 0) — the "clairvoyant completes the work"
	// convention. Without it, admission is a free reward and the optimum
	// degenerates to minimum-energy operation.
	RequireDrain bool
	// MaxCombos caps the schedule-combination enumeration (0 = 100000).
	MaxCombos int
	// CostCuts is the number of tangent cuts approximating f (0 = 24).
	CostCuts int
}

// Solution is the clairvoyant optimum.
type Solution struct {
	// Objective is the per-slot average of f̂(P(t)) − λ·Σ k_s(t), where f̂
	// is the tangent-cut under-approximation of f.
	Objective float64
	// TrueObjective re-evaluates the optimal trajectory under the exact f.
	TrueObjective float64
	// AvgEnergyCost is the per-slot average of the exact f(P(t)).
	AvgEnergyCost float64
	// GridWh[t] is the optimal total base-station draw per slot.
	GridWh []float64
	// AdmittedPkts is the total admission over the horizon.
	AdmittedPkts float64
	// Combos is the number of schedule combinations whose LP was solved.
	Combos int
	// PatternsPerSlot records the per-slot schedule-pattern counts.
	PatternsPerSlot []int
}

// ErrInstance reports an unusable instance.
var ErrInstance = errors.New("offline: invalid instance")

// ErrTooLarge reports that enumeration would exceed MaxCombos.
var ErrTooLarge = errors.New("offline: instance too large to enumerate")

// pattern is one feasible slot schedule: active links, their bands,
// minimal powers, rates.
type pattern struct {
	links  []int
	bands  []int
	powers []float64
	rates  []float64
	// txWh[i] is node i's transmit+receive energy under this pattern.
	txWh []float64
}

// Solve computes the clairvoyant optimum.
func Solve(inst *Instance) (*Solution, error) {
	if inst.Net == nil || inst.Traffic == nil || inst.Cost == nil {
		return nil, fmt.Errorf("%w: nil component", ErrInstance)
	}
	if len(inst.Realization) == 0 {
		return nil, fmt.Errorf("%w: empty realization", ErrInstance)
	}
	if inst.SlotSeconds <= 0 {
		return nil, fmt.Errorf("%w: SlotSeconds = %v", ErrInstance, inst.SlotSeconds)
	}
	maxCombos := inst.MaxCombos
	if maxCombos == 0 {
		maxCombos = 100000
	}
	cuts := inst.CostCuts
	if cuts == 0 {
		cuts = 24
	}

	T := len(inst.Realization)
	perSlot := make([][]pattern, T)
	total := 1
	sol := &Solution{PatternsPerSlot: make([]int, T)}
	for t := 0; t < T; t++ {
		perSlot[t] = enumeratePatterns(inst, inst.Realization[t])
		sol.PatternsPerSlot[t] = len(perSlot[t])
		total *= len(perSlot[t])
		if total > maxCombos {
			return nil, fmt.Errorf("%w: %d+ schedule combinations (cap %d)", ErrTooLarge, total, maxCombos)
		}
	}

	best := math.Inf(1)
	var bestSol *Solution
	idx := make([]int, T)
	for {
		combo := make([]*pattern, T)
		for t := range idx {
			combo[t] = &perSlot[t][idx[t]]
		}
		s, feasible, err := solveCombo(inst, combo, cuts)
		if err != nil {
			return nil, err
		}
		sol.Combos++
		if feasible && s.Objective < best {
			best = s.Objective
			bestSol = s
		}
		// Advance the mixed-radix counter.
		t := 0
		for ; t < T; t++ {
			idx[t]++
			if idx[t] < len(perSlot[t]) {
				break
			}
			idx[t] = 0
		}
		if t == T {
			break
		}
	}
	if bestSol == nil {
		return nil, fmt.Errorf("%w: no feasible schedule combination", ErrInstance)
	}
	bestSol.Combos = sol.Combos
	bestSol.PatternsPerSlot = sol.PatternsPerSlot
	return bestSol, nil
}

// enumeratePatterns lists every schedule feasible under (22) and (24) for
// the slot's widths, including the empty schedule. Powers are minimized by
// power control; sets that cannot close at the caps are excluded.
func enumeratePatterns(inst *Instance, obs core.Observation) []pattern {
	net := inst.Net
	type pairT struct{ link, band int }
	var pairs []pairT
	for l, link := range net.Links {
		for _, b := range link.Bands {
			if obs.Widths[b] <= 0 {
				continue
			}
			s := net.Radio.InterferenceFreeSINR(
				net.Gains[link.From][link.To], net.MaxTxPower(link.From).Watts(), obs.Widths[b].Hz())
			if s >= net.Radio.SINRThreshold {
				pairs = append(pairs, pairT{l, b})
			}
		}
	}

	dtH := inst.SlotSeconds / 3600
	var out []pattern
	var rec func(start int, chosen []pairT)
	build := func(chosen []pairT) (pattern, bool) {
		p := pattern{txWh: make([]float64, net.NumNodes())}
		perBand := map[int][]int{} // band -> chosen indices
		for ci, c := range chosen {
			perBand[c.band] = append(perBand[c.band], ci)
		}
		powers := make([]float64, len(chosen))
		for band, cis := range perBand {
			txs := make([]radio.Transmission, len(cis))
			caps := make([]float64, len(cis))
			for k, ci := range cis {
				link := net.Links[chosen[ci].link]
				txs[k] = radio.Transmission{From: link.From, To: link.To}
				caps[k] = net.MaxTxPower(link.From).Watts()
			}
			pw, ok := net.Radio.ControlPowers(net.Gains, txs, obs.Widths[band].Hz(), caps)
			if !ok {
				return pattern{}, false
			}
			for k, ci := range cis {
				powers[ci] = pw[k]
			}
		}
		for ci, c := range chosen {
			link := net.Links[c.link]
			p.links = append(p.links, c.link)
			p.bands = append(p.bands, c.band)
			p.powers = append(p.powers, powers[ci])
			p.rates = append(p.rates, net.Radio.Capacity(obs.Widths[c.band].Hz()))
			p.txWh[link.From] += powers[ci] * dtH
			p.txWh[link.To] += net.Nodes[link.To].Spec.RecvPowerW.Watts() * dtH
		}
		return p, true
	}
	rec = func(start int, chosen []pairT) {
		if p, ok := build(chosen); ok {
			out = append(out, p)
		} else {
			return // supersets of an infeasible set stay infeasible
		}
		for i := start; i < len(pairs); i++ {
			c := pairs[i]
			link := net.Links[c.link]
			conflict := false
			for _, ch := range chosen {
				l2 := net.Links[ch.link]
				if l2.From == link.From || l2.From == link.To ||
					l2.To == link.From || l2.To == link.To {
					conflict = true // single-radio constraint (22)
					break
				}
			}
			if conflict {
				continue
			}
			rec(i+1, append(chosen, c))
		}
	}
	rec(0, nil)
	return out
}

// solveCombo builds and solves the joint LP for one schedule combination.
func solveCombo(inst *Instance, combo []*pattern, cuts int) (*Solution, bool, error) {
	net := inst.Net
	T := len(combo)
	S := inst.Traffic.NumSessions()
	delta := inst.Traffic.PacketBits
	dtH := inst.SlotSeconds / 3600
	inf := math.Inf(1)

	prob := lp.NewProblem(lp.Minimize)

	// Per-slot link capacities (packets) under the combo.
	capPkts := make([][]float64, T)
	for t, p := range combo {
		capPkts[t] = make([]float64, len(net.Links))
		for k, l := range p.links {
			capPkts[t][l] += p.rates[k] * inst.SlotSeconds / delta
		}
	}

	// Flow variables l[t][link][s] and admissions k[t][s][bs].
	flow := make([][][]lp.VarID, T)
	admit := make([][][]lp.VarID, T)
	bss := net.BaseStations()
	for t := 0; t < T; t++ {
		flow[t] = make([][]lp.VarID, len(net.Links))
		for l := range net.Links {
			if capPkts[t][l] <= 0 {
				continue
			}
			flow[t][l] = make([]lp.VarID, S)
			for s := 0; s < S; s++ {
				flow[t][l][s] = prob.AddVar("l", 0, inf, 0)
			}
		}
		admit[t] = make([][]lp.VarID, S)
		for s := 0; s < S; s++ {
			admit[t][s] = make([]lp.VarID, len(bss))
			for b := range bss {
				admit[t][s][b] = prob.AddVar("k", 0, inst.Traffic.Sessions[s].MaxAdmission,
					-inst.Lambda)
			}
			// Σ_b k ≤ K_max (total admission per session per slot).
			terms := make([]lp.Term, len(bss))
			for b := range bss {
				terms[b] = lp.Term{Var: admit[t][s][b], Coef: 1}
			}
			prob.AddConstraint("kcap", lp.LE, inst.Traffic.Sessions[s].MaxAdmission, terms...)
		}
		// Capacity rows: δ·Σ_s l ≤ scheduled capacity.
		for l := range net.Links {
			if flow[t][l] == nil {
				continue
			}
			terms := make([]lp.Term, S)
			for s := 0; s < S; s++ {
				terms[s] = lp.Term{Var: flow[t][l][s], Coef: 1}
			}
			prob.AddConstraint("cap", lp.LE, capPkts[t][l], terms...)
		}
	}

	// Queue variables Q[t][s][i] for t = 1..T (Q[0] = 0), with
	// service-limited dynamics and optional terminal drain.
	queue := make([][][]lp.VarID, T+1)
	for t := 1; t <= T; t++ {
		queue[t] = make([][]lp.VarID, S)
		for s := 0; s < S; s++ {
			queue[t][s] = make([]lp.VarID, net.NumNodes())
			for i := range net.Nodes {
				if i == inst.Traffic.Sessions[s].Dest {
					continue // destinations keep no queue
				}
				hi := inf
				if inst.RequireDrain && t == T {
					hi = 0
				}
				queue[t][s][i] = prob.AddVar("Q", 0, hi, 0)
			}
		}
	}
	qAt := func(t, s, i int) (lp.VarID, bool) {
		if t == 0 || i == inst.Traffic.Sessions[s].Dest {
			return 0, false
		}
		return queue[t][s][i], true
	}
	for t := 0; t < T; t++ {
		for s := 0; s < S; s++ {
			sess := inst.Traffic.Sessions[s]
			for i := range net.Nodes {
				if i == sess.Dest {
					continue
				}
				// Q[t+1][i] = Q[t][i] − out + in + admitted.
				terms := []lp.Term{{Var: queue[t+1][s][i], Coef: 1}}
				outTerms := []lp.Term{}
				for _, l := range net.OutLinks(i) {
					if flow[t][l] != nil {
						terms = append(terms, lp.Term{Var: flow[t][l][s], Coef: 1})
						outTerms = append(outTerms, lp.Term{Var: flow[t][l][s], Coef: 1})
					}
				}
				for _, l := range net.InLinks(i) {
					if flow[t][l] != nil {
						terms = append(terms, lp.Term{Var: flow[t][l][s], Coef: -1})
					}
				}
				for b, bsNode := range bss {
					if bsNode == i {
						terms = append(terms, lp.Term{Var: admit[t][s][b], Coef: -1})
					}
				}
				if v, ok := qAt(t, s, i); ok {
					terms = append(terms, lp.Term{Var: v, Coef: -1})
				}
				prob.AddConstraint("qdyn", lp.EQ, 0, terms...)
				// Service limit: out ≤ Q[t][i].
				if len(outTerms) > 0 {
					if v, ok := qAt(t, s, i); ok {
						outTerms = append(outTerms, lp.Term{Var: v, Coef: -1})
						prob.AddConstraint("qserve", lp.LE, 0, outTerms...)
					} else {
						// Q[0] = 0: nothing to ship in slot 0.
						prob.AddConstraint("qserve0", lp.LE, 0, outTerms...)
					}
				}
			}
			// Delivery cap at the destination.
			dest := sess.Dest
			var inTerms []lp.Term
			for _, l := range net.InLinks(dest) {
				if flow[t][l] != nil {
					inTerms = append(inTerms, lp.Term{Var: flow[t][l][s], Coef: 1})
				}
			}
			if len(inTerms) > 0 {
				prob.AddConstraint("deliver", lp.LE, sess.DemandAt(t), inTerms...)
			}
			// The destination never transmits: outgoing flows of dest = 0.
			for _, l := range net.OutLinks(dest) {
				if flow[t][l] != nil {
					prob.SetVarBounds(flow[t][l][s], 0, 0)
				}
			}
		}
	}

	// Energy variables per node per slot, battery trajectory, and grid cost.
	type evars struct{ r, cr, g, cg, d lp.VarID }
	evs := make([][]evars, T)
	batt := make([][]lp.VarID, T+1) // x[t][i], t=1..T
	pTot := make([]lp.VarID, T)
	yCost := make([]lp.VarID, T)
	pMaxTotal := 0.0
	for _, i := range bss {
		pMaxTotal += net.Nodes[i].Spec.Grid.MaxDrawWh.Wh()
	}
	for t := 1; t <= T; t++ {
		batt[t] = make([]lp.VarID, net.NumNodes())
		for i, nd := range net.Nodes {
			batt[t][i] = prob.AddVar("x", 0, nd.Spec.Battery.CapacityWh.Wh(), 0)
		}
	}
	for t := 0; t < T; t++ {
		obs := inst.Realization[t]
		evs[t] = make([]evars, net.NumNodes())
		pTot[t] = prob.AddVar("P", 0, pMaxTotal, 0)
		yCost[t] = prob.AddVar("y", 0, inf, 1.0/float64(T))
		var pTerms []lp.Term
		for i, nd := range net.Nodes {
			spec := nd.Spec
			gridCap := 0.0
			if obs.Connected[i] {
				gridCap = spec.Grid.MaxDrawWh.Wh()
			}
			v := evars{
				r:  prob.AddVar("r", 0, inf, 0),
				cr: prob.AddVar("cr", 0, inf, 0),
				g:  prob.AddVar("g", 0, inf, 0),
				cg: prob.AddVar("cg", 0, inf, 0),
				d:  prob.AddVar("d", 0, spec.Battery.MaxDischargeWh.Wh(), 0),
			}
			evs[t][i] = v
			prob.AddConstraint("renew", lp.LE, obs.RenewWh[i].Wh(),
				lp.Term{Var: v.r, Coef: 1}, lp.Term{Var: v.cr, Coef: 1})
			prob.AddConstraint("chargecap", lp.LE, spec.Battery.MaxChargeWh.Wh(),
				lp.Term{Var: v.cr, Coef: 1}, lp.Term{Var: v.cg, Coef: 1})
			prob.AddConstraint("gridcap", lp.LE, gridCap,
				lp.Term{Var: v.g, Coef: 1}, lp.Term{Var: v.cg, Coef: 1})
			// Demand balance: g + r + d = E (fixed by the pattern).
			demand := (spec.ConstPowerW+spec.IdlePowerW).Watts()*dtH + combo[t].txWh[i]
			prob.AddConstraint("demand", lp.EQ, demand,
				lp.Term{Var: v.g, Coef: 1}, lp.Term{Var: v.r, Coef: 1},
				lp.Term{Var: v.d, Coef: 1})
			// Battery dynamics: x[t+1] = x[t] + cr + cg − d.
			terms := []lp.Term{
				{Var: batt[t+1][i], Coef: 1},
				{Var: v.cr, Coef: -1}, {Var: v.cg, Coef: -1},
				{Var: v.d, Coef: 1},
			}
			rhs := 0.0
			if t == 0 {
				rhs = spec.BatteryInitWh.Wh()
			} else {
				terms = append(terms, lp.Term{Var: batt[t][i], Coef: -1})
			}
			prob.AddConstraint("battdyn", lp.EQ, rhs, terms...)
			if net.IsBS(i) {
				pTerms = append(pTerms, lp.Term{Var: v.g, Coef: 1}, lp.Term{Var: v.cg, Coef: 1})
			}
		}
		pTerms = append(pTerms, lp.Term{Var: pTot[t], Coef: -1})
		prob.AddConstraint("ptot", lp.EQ, 0, pTerms...)
		// Tangent cuts: y ≥ f(p_k) + f'(p_k)(P − p_k). Quadratic spacing
		// concentrates cuts near zero, where realistic draws live.
		for k := 0; k < cuts; k++ {
			frac := float64(k) / float64(cuts-1)
			pk := pMaxTotal * frac * frac
			fp := inst.Cost.Eval(units.Wh(pk)).Value()
			dp := inst.Cost.Deriv(units.Wh(pk)).PerWh()
			prob.AddConstraint("cut", lp.GE, fp-dp*pk,
				lp.Term{Var: yCost[t], Coef: 1}, lp.Term{Var: pTot[t], Coef: -dp})
		}
	}

	// Scale the admission reward per slot average.
	for t := 0; t < T; t++ {
		for s := 0; s < S; s++ {
			for b := range bss {
				prob.SetVarCost(admit[t][s][b], -inst.Lambda/float64(T))
			}
		}
	}

	solLP, err := prob.Solve()
	if err != nil {
		return nil, false, err
	}
	if solLP.Status != lp.Optimal {
		return nil, false, nil // infeasible combo (e.g. drain impossible)
	}

	out := &Solution{GridWh: make([]float64, T)}
	out.Objective = solLP.Objective
	for t := 0; t < T; t++ {
		p := solLP.Value(pTot[t])
		out.GridWh[t] = p
		out.AvgEnergyCost += inst.Cost.Eval(units.Wh(p)).Value() / float64(T)
		for s := 0; s < S; s++ {
			for b := range bss {
				out.AdmittedPkts += solLP.Value(admit[t][s][b])
			}
		}
	}
	out.TrueObjective = out.AvgEnergyCost - inst.Lambda*out.AdmittedPkts/float64(T)
	return out, true, nil
}
