package offline

import (
	"errors"
	"math"
	"testing"

	"greencell/internal/core"
	"greencell/internal/energy"
	"greencell/internal/geom"
	"greencell/internal/radio"
	"greencell/internal/rng"
	"greencell/internal/spectrum"
	"greencell/internal/topology"
	"greencell/internal/traffic"
	"greencell/internal/units"
)

// tinySetup builds a 3-node line (BS -> u1 -> u2 plus the direct BS -> u2)
// on a single band, one session destined to u2.
func tinySetup(t testing.TB) (*topology.Network, *traffic.Model) {
	t.Helper()
	sm := &spectrum.Model{Bands: []spectrum.Band{
		{Name: "cell", Width: spectrum.Constant(1e6), Universal: true},
	}}
	spec := func(maxTx float64) topology.NodeSpec {
		return topology.NodeSpec{
			MaxTxPowerW: units.Watts(maxTx),
			RecvPowerW:  0.05,
			ConstPowerW: 1,
			IdlePowerW:  0.5,
			Battery:     energy.BatterySpec{CapacityWh: 10, MaxChargeWh: 0.5, MaxDischargeWh: 0.5},
			Renewable:   energy.ConstantPower(0.05),
			Grid:        energy.GridConnection{MaxDrawWh: 50, AlwaysOn: true},
		}
	}
	nodes := []topology.Node{
		{Kind: topology.BaseStation, Pos: geom.Point{X: 0, Y: 0}, Spec: spec(20)},
		{Kind: topology.User, Pos: geom.Point{X: 400, Y: 0}, Spec: spec(1)},
		{Kind: topology.User, Pos: geom.Point{X: 800, Y: 0}, Spec: spec(1)},
	}
	avail := spectrum.NewAvailability(len(nodes), sm)
	for i := range nodes {
		avail.GrantAll(i)
	}
	rp := radio.Params{Prop: radio.Propagation{C: 62.5, Gamma: 4}, SINRThreshold: 1, NoiseDensity: 3e-17}
	net, err := topology.Manual(nodes, sm, avail, rp, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	tm := &traffic.Model{
		PacketBits: 1.2e6,
		Sessions:   []traffic.Session{{ID: 0, Dest: 2, DemandPkts: 10, MaxAdmission: 10}},
	}
	return net, tm
}

func fixedRealization(net *topology.Network, slots int) []core.Observation {
	out := make([]core.Observation, slots)
	for t := range out {
		obs := core.Observation{
			Widths:    []units.Bandwidth{units.Hz(1e6)},
			RenewWh:   make([]units.Energy, net.NumNodes()),
			Connected: make([]bool, net.NumNodes()),
		}
		for i := range obs.RenewWh {
			obs.RenewWh[i] = 0.05
			obs.Connected[i] = true
		}
		out[t] = obs
	}
	return out
}

func TestSolveTiny(t *testing.T) {
	net, tm := tinySetup(t)
	inst := &Instance{
		Net:         net,
		Traffic:     tm,
		SlotSeconds: 60,
		Cost:        energy.Quadratic{A: 0.5, B: 0.1},
		Lambda:      0.05,
		Realization: fixedRealization(net, 3),
	}
	sol, err := Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Combos == 0 || len(sol.PatternsPerSlot) != 3 {
		t.Fatalf("bookkeeping wrong: %+v", sol)
	}
	// Every slot enumerates at least the empty pattern plus the three
	// single-link patterns.
	for t2, n := range sol.PatternsPerSlot {
		if n < 4 {
			t.Errorf("slot %d: %d patterns, want >= 4", t2, n)
		}
	}
	// Tangent cuts under-approximate: Objective <= TrueObjective.
	if sol.Objective > sol.TrueObjective+1e-9 {
		t.Errorf("cut objective %v above true objective %v", sol.Objective, sol.TrueObjective)
	}
	if len(sol.GridWh) != 3 {
		t.Errorf("grid trace length %d", len(sol.GridWh))
	}
	for _, p := range sol.GridWh {
		if p < -1e-9 {
			t.Errorf("negative grid draw %v", p)
		}
	}
}

func TestZeroLambdaIsMinimumEnergy(t *testing.T) {
	net, tm := tinySetup(t)
	inst := &Instance{
		Net:         net,
		Traffic:     tm,
		SlotSeconds: 60,
		Cost:        energy.Quadratic{A: 0.5, B: 0.1},
		Lambda:      0, // admission worthless: optimum = serve fixed demand only
		Realization: fixedRealization(net, 2),
		CostCuts:    48,
	}
	sol, err := Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	if sol.AdmittedPkts > 1e-6 {
		t.Errorf("admitted %v packets with zero reward", sol.AdmittedPkts)
	}
	// Only the BS counts toward P: its fixed demand is 1.5 W x 1 min =
	// 0.025 Wh, renewable covers 0.05 Wh, so the grid draw should be zero.
	for _, p := range sol.GridWh {
		if p > 1e-6 {
			t.Errorf("grid draw %v, want 0 (renewable covers the BS idle load)", p)
		}
	}
	if sol.AvgEnergyCost > 1e-6 {
		t.Errorf("avg cost %v, want ~0", sol.AvgEnergyCost)
	}
}

func TestGridNeededWithoutRenewable(t *testing.T) {
	net, tm := tinySetup(t)
	real := fixedRealization(net, 2)
	for t2 := range real {
		for i := range real[t2].RenewWh {
			real[t2].RenewWh[i] = 0
		}
	}
	cost := energy.Quadratic{A: 0.5, B: 0.1}
	inst := &Instance{
		Net:         net,
		Traffic:     tm,
		SlotSeconds: 60,
		Cost:        cost,
		Lambda:      0,
		Realization: real,
		CostCuts:    64,
	}
	sol, err := Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	// The BS needs 1.5 W x 1 min = 0.025 Wh per slot with no renewable and
	// an initially-empty battery, so total grid energy over 2 slots is
	// exactly 0.05 Wh (the LP may shift energy between slots through the
	// battery — under the piecewise-linear f̂ such shifts can tie).
	perSlot := 1.5 * (60.0 / 3600)
	total := 0.0
	for _, p := range sol.GridWh {
		total += p
	}
	if math.Abs(total-2*perSlot) > 1e-6 {
		t.Errorf("total grid draw %v, want %v", total, 2*perSlot)
	}
	// The cut objective under-approximates the true convex cost, which in
	// turn cannot beat the perfectly-balanced schedule... evaluated under f̂.
	if sol.Objective > sol.TrueObjective+1e-9 {
		t.Errorf("cut objective %v above true %v", sol.Objective, sol.TrueObjective)
	}
	if sol.TrueObjective < cost.Eval(units.Wh(perSlot)).Value()-1e-9 {
		t.Errorf("true cost %v below the balanced lower bound f(%v)=%v (convexity violated?)",
			sol.TrueObjective, perSlot, cost.Eval(units.Wh(perSlot)))
	}
}

// TestClairvoyanceDominance: on a common fixed realization, the online
// controller's realized average penalty objective can never beat the
// clairvoyant optimum (computed without the drain requirement, which makes
// the offline strictly more permissive than any online policy).
func TestClairvoyanceDominance(t *testing.T) {
	net, tm := tinySetup(t)
	const T = 3
	real := fixedRealization(net, T)
	cost := energy.Quadratic{A: 0.5, B: 0.1}
	const lambda = 0.05

	inst := &Instance{
		Net:         net,
		Traffic:     tm,
		SlotSeconds: 60,
		Cost:        cost,
		Lambda:      lambda,
		Realization: real,
		CostCuts:    48,
	}
	off, err := Solve(inst)
	if err != nil {
		t.Fatal(err)
	}

	ctrl, err := core.New(core.Config{
		Net:         net,
		Traffic:     tm,
		V:           1e3,
		Lambda:      lambda,
		SlotSeconds: 60,
		Cost:        cost,
		EnergyGate:  true,
		Env:         core.FixedEnvironment{Slots: real},
	})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(9)
	onlineObj := 0.0
	for slot := 0; slot < T; slot++ {
		sr, err := ctrl.Step(src)
		if err != nil {
			t.Fatal(err)
		}
		onlineObj += sr.PenaltyObjective / T
	}
	if off.TrueObjective > onlineObj+1e-6*(1+math.Abs(onlineObj)) {
		t.Errorf("clairvoyant optimum %v worse than online %v", off.TrueObjective, onlineObj)
	}
	t.Logf("offline %v <= online %v", off.TrueObjective, onlineObj)
}

func TestRequireDrainForcesDelivery(t *testing.T) {
	net, tm := tinySetup(t)
	inst := &Instance{
		Net:          net,
		Traffic:      tm,
		SlotSeconds:  60,
		Cost:         energy.Quadratic{A: 0.5, B: 0.1},
		Lambda:       10, // generous reward: admit as much as deliverable
		Realization:  fixedRealization(net, 3),
		RequireDrain: true,
	}
	sol, err := Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	// With drain, admissions are bounded by deliverable capacity: the last
	// slot cannot admit (no slot remains to deliver), so admissions are
	// strictly below the 3-slot cap.
	maxAdmission := 3 * tm.Sessions[0].MaxAdmission
	if sol.AdmittedPkts >= maxAdmission-1e-9 {
		t.Errorf("admitted %v with drain, should be < %v", sol.AdmittedPkts, maxAdmission)
	}
	if sol.AdmittedPkts <= 0 {
		t.Error("generous reward should still admit something deliverable")
	}
}

func TestErrors(t *testing.T) {
	net, tm := tinySetup(t)
	if _, err := Solve(&Instance{}); !errors.Is(err, ErrInstance) {
		t.Error("nil components accepted")
	}
	if _, err := Solve(&Instance{
		Net: net, Traffic: tm, Cost: energy.Quadratic{A: 1},
		SlotSeconds: 60,
	}); !errors.Is(err, ErrInstance) {
		t.Error("empty realization accepted")
	}
	if _, err := Solve(&Instance{
		Net: net, Traffic: tm, Cost: energy.Quadratic{A: 1},
		SlotSeconds: 60,
		Realization: fixedRealization(net, 10),
		MaxCombos:   10,
	}); !errors.Is(err, ErrTooLarge) {
		t.Error("oversized instance accepted")
	}
}
