package radio

import (
	"math"
	"testing"

	"greencell/internal/rng"
)

// BenchmarkControlPowers measures Foschini–Miljanic power control on a
// 5-link co-channel layout.
func BenchmarkControlPowers(b *testing.B) {
	p := Params{Prop: Propagation{C: 62.5, Gamma: 4}, SINRThreshold: 1, NoiseDensity: 3e-17}
	src := rng.New(3)
	const n = 10
	pts := make([][2]float64, n)
	for i := range pts {
		pts[i] = [2]float64{src.Uniform(0, 4000), src.Uniform(0, 4000)}
	}
	gains := make([][]float64, n)
	for i := range gains {
		gains[i] = make([]float64, n)
		for j := range gains[i] {
			if i != j {
				dx := pts[i][0] - pts[j][0]
				dy := pts[i][1] - pts[j][1]
				gains[i][j] = p.Prop.Gain(math.Hypot(dx, dy))
			}
		}
	}
	txs := []Transmission{{From: 0, To: 1}, {From: 2, To: 3}, {From: 4, To: 5}, {From: 6, To: 7}, {From: 8, To: 9}}
	caps := []float64{20, 20, 20, 20, 20}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ControlPowers(gains, txs, 1.5e6, caps)
	}
}
