// Package radio implements the physical layer of the paper's Section II-B:
// power-law propagation, the Physical (SINR) interference model, fixed-rate
// link capacities, and minimal-power computation via Foschini–Miljanic
// iterative power control.
package radio

import "math"

// Propagation is the power propagation gain model g = C * d^-gamma
// (paper Section II-B).
type Propagation struct {
	// C is the antenna/wavelength constant.
	C float64
	// Gamma is the path-loss exponent.
	Gamma float64
	// MinDistance guards the near-field singularity: distances below it are
	// clamped. Zero means the default of 1 meter.
	MinDistance float64
}

// Gain returns the power gain between two nodes d meters apart.
func (p Propagation) Gain(d float64) float64 {
	minD := p.MinDistance
	if minD == 0 {
		minD = 1
	}
	if d < minD {
		d = minD
	}
	return p.C * math.Pow(d, -p.Gamma)
}

// Params bundles the physical-layer constants.
type Params struct {
	Prop Propagation
	// SINRThreshold is Γ: a transmission succeeds iff its SINR ≥ Γ.
	SINRThreshold float64
	// NoiseDensity is η, the thermal noise power density in W/Hz.
	NoiseDensity float64
}

// Capacity returns the link capacity in bits/s over a band of the given
// width (Hz) when the SINR threshold is met: W * log2(1+Γ) — paper eq. (1).
func (p Params) Capacity(widthHz float64) float64 {
	return widthHz * math.Log2(1+p.SINRThreshold)
}

// SINR computes the signal-to-interference-plus-noise ratio of a signal
// received with the given gain and power against noise power and aggregate
// interference power (paper Section II-B).
func SINR(gain, txPower, noisePower, interference float64) float64 {
	denom := noisePower + interference
	if denom <= 0 {
		return math.Inf(1)
	}
	return gain * txPower / denom
}

// Transmission is one active link on a band: node From transmits to node To
// with the given power in watts.
type Transmission struct {
	From, To int
	Power    float64
}

// EvaluateSINR returns the SINR of each transmission in txs when they are
// simultaneously active on a band of width widthHz. gains[t][r] is the
// power gain from node t to node r.
func (p Params) EvaluateSINR(gains [][]float64, txs []Transmission, widthHz float64) []float64 {
	noise := p.NoiseDensity * widthHz
	out := make([]float64, len(txs))
	for l, tx := range txs {
		interf := 0.0
		for k, other := range txs {
			if k == l {
				continue
			}
			interf += gains[other.From][tx.To] * other.Power
		}
		out[l] = SINR(gains[tx.From][tx.To], tx.Power, noise, interf)
	}
	return out
}

// AllMeetThreshold reports whether every transmission's SINR is at least Γ
// (with a small relative tolerance to absorb floating-point noise).
func (p Params) AllMeetThreshold(gains [][]float64, txs []Transmission, widthHz float64) bool {
	for _, s := range p.EvaluateSINR(gains, txs, widthHz) {
		if s < p.SINRThreshold*(1-1e-9) {
			return false
		}
	}
	return true
}

// ControlPowers runs Foschini–Miljanic iterative power control to find the
// minimal power vector under which every transmission in txs meets the SINR
// threshold on a band of width widthHz, subject to per-transmission caps
// maxPower. The iteration starts from the caps: if the cap vector itself is
// feasible, the iteration decreases monotonically to the minimal solution.
//
// It returns the resulting powers and whether the targets are met. When the
// system is infeasible even at the caps, ok is false and the returned
// powers are the caps.
func (p Params) ControlPowers(gains [][]float64, txs []Transmission, widthHz float64, maxPower []float64) (powers []float64, ok bool) {
	n := len(txs)
	powers = make([]float64, n)
	for l := range powers {
		powers[l] = maxPower[l]
	}
	if n == 0 {
		return powers, true
	}
	if !p.AllMeetThreshold(gains, withPowers(txs, powers), widthHz) {
		return powers, false
	}

	noise := p.NoiseDensity * widthHz
	const (
		iters = 200
		tol   = 1e-10
	)
	next := make([]float64, n)
	for it := 0; it < iters; it++ {
		maxDelta := 0.0
		for l, tx := range txs {
			interf := 0.0
			for k, other := range txs {
				if k == l {
					continue
				}
				interf += gains[other.From][tx.To] * powers[k]
			}
			want := p.SINRThreshold * (noise + interf) / gains[tx.From][tx.To]
			if want > maxPower[l] {
				want = maxPower[l]
			}
			if d := math.Abs(want - powers[l]); d > maxDelta {
				maxDelta = d
			}
			next[l] = want
		}
		copy(powers, next)
		if maxDelta < tol {
			break
		}
	}
	return powers, p.AllMeetThreshold(gains, withPowers(txs, powers), widthHz)
}

func withPowers(txs []Transmission, powers []float64) []Transmission {
	out := make([]Transmission, len(txs))
	for i, tx := range txs {
		tx.Power = powers[i]
		out[i] = tx
	}
	return out
}

// InterferenceFreeSINR returns the SINR of a single isolated transmission
// with the given gain and power on a band of width widthHz. It is the
// feasibility screen for candidate links.
func (p Params) InterferenceFreeSINR(gain, power, widthHz float64) float64 {
	return SINR(gain, power, p.NoiseDensity*widthHz, 0)
}
