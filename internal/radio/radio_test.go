package radio

import (
	"math"
	"testing"

	"greencell/internal/rng"
)

func paperParams() Params {
	return Params{
		Prop:          Propagation{C: 62.5, Gamma: 4},
		SINRThreshold: 1,
		NoiseDensity:  1e-20,
	}
}

func TestGainMonotoneDecreasing(t *testing.T) {
	p := paperParams().Prop
	prev := p.Gain(1)
	for d := 2.0; d <= 4096; d *= 2 {
		g := p.Gain(d)
		if g >= prev {
			t.Fatalf("gain not decreasing at d=%v: %v >= %v", d, g, prev)
		}
		prev = g
	}
}

func TestGainNearFieldClamp(t *testing.T) {
	p := paperParams().Prop
	if p.Gain(0) != p.Gain(0.5) || p.Gain(0) != p.Gain(1) {
		t.Error("distances below MinDistance should clamp to the same gain")
	}
}

func TestGainFormula(t *testing.T) {
	p := Propagation{C: 62.5, Gamma: 4}
	want := 62.5 * math.Pow(100, -4)
	if got := p.Gain(100); math.Abs(got-want) > 1e-18 {
		t.Errorf("Gain(100) = %v, want %v", got, want)
	}
}

func TestCapacity(t *testing.T) {
	p := paperParams()
	// Γ=1 -> log2(2)=1 -> capacity equals bandwidth.
	if got := p.Capacity(1e6); math.Abs(got-1e6) > 1e-6 {
		t.Errorf("Capacity(1 MHz) = %v, want 1e6", got)
	}
	p.SINRThreshold = 3
	if got := p.Capacity(1e6); math.Abs(got-2e6) > 1e-6 {
		t.Errorf("Capacity with Γ=3 = %v, want 2e6", got)
	}
}

func TestSINRNoInterference(t *testing.T) {
	s := SINR(1e-8, 2, 1e-14, 0)
	want := 1e-8 * 2 / 1e-14
	if math.Abs(s-want)/want > 1e-12 {
		t.Errorf("SINR = %v, want %v", s, want)
	}
	if !math.IsInf(SINR(1, 1, 0, 0), 1) {
		t.Error("zero noise and interference should give +Inf SINR")
	}
}

// twoLinkGains builds a 4-node gain matrix for two parallel links
// 0->1 and 2->3 with the paper's propagation.
func twoLinkGains(d01, d23, cross float64) [][]float64 {
	prop := Propagation{C: 62.5, Gamma: 4}
	g := make([][]float64, 4)
	for i := range g {
		g[i] = make([]float64, 4)
	}
	g[0][1] = prop.Gain(d01)
	g[2][3] = prop.Gain(d23)
	// Cross gains: interferer at distance `cross` from the victim receiver.
	g[0][3] = prop.Gain(cross)
	g[2][1] = prop.Gain(cross)
	return g
}

func TestEvaluateSINRAccountsForInterference(t *testing.T) {
	p := paperParams()
	gains := twoLinkGains(100, 100, 500)
	txs := []Transmission{{From: 0, To: 1, Power: 1}, {From: 2, To: 3, Power: 1}}
	s := p.EvaluateSINR(gains, txs, 1e6)
	solo := p.EvaluateSINR(gains, txs[:1], 1e6)
	if s[0] >= solo[0] {
		t.Errorf("interference should reduce SINR: with=%v solo=%v", s[0], solo[0])
	}
}

func TestControlPowersSingleLink(t *testing.T) {
	p := paperParams()
	gains := twoLinkGains(200, 200, 1000)
	txs := []Transmission{{From: 0, To: 1, Power: 0}}
	powers, ok := p.ControlPowers(gains, txs, 1e6, []float64{1})
	if !ok {
		t.Fatal("single close link should be feasible")
	}
	// Closed form: P = Γ·η·W / g.
	want := 1.0 * 1e-20 * 1e6 / gains[0][1]
	if math.Abs(powers[0]-want)/want > 1e-6 {
		t.Errorf("power = %v, want %v", powers[0], want)
	}
}

func TestControlPowersTwoLinksClosedForm(t *testing.T) {
	p := paperParams()
	gains := twoLinkGains(100, 100, 800)
	txs := []Transmission{{From: 0, To: 1}, {From: 2, To: 3}}
	powers, ok := p.ControlPowers(gains, txs, 1e6, []float64{1, 1})
	if !ok {
		t.Fatal("well-separated links should be feasible")
	}
	// Symmetric pair: P = Γ(ηW + g_x P)/g  =>  P = ΓηW / (g − Γ g_x).
	g := gains[0][1]
	gx := gains[2][1]
	want := 1e-20 * 1e6 / (g - gx)
	for l := 0; l < 2; l++ {
		if math.Abs(powers[l]-want)/want > 1e-6 {
			t.Errorf("link %d power = %v, want %v", l, powers[l], want)
		}
	}
	// Minimality: the SINRs should sit exactly at the threshold.
	for _, s := range p.EvaluateSINR(gains, withPowers(txs, powers), 1e6) {
		if math.Abs(s-p.SINRThreshold) > 1e-6 {
			t.Errorf("SINR = %v, want exactly %v", s, p.SINRThreshold)
		}
	}
}

func TestControlPowersInfeasible(t *testing.T) {
	p := paperParams()
	// Two co-located links: victim receiver as close to the interferer as
	// to its own transmitter; with Γ=1 this is borderline-infeasible once
	// noise is added.
	gains := twoLinkGains(100, 100, 100)
	txs := []Transmission{{From: 0, To: 1}, {From: 2, To: 3}}
	_, ok := p.ControlPowers(gains, txs, 1e6, []float64{1, 1})
	if ok {
		t.Fatal("co-located equal-gain links cannot all meet Γ=1")
	}
}

func TestControlPowersRespectsCaps(t *testing.T) {
	p := paperParams()
	// A very long link whose required power exceeds the cap.
	gains := twoLinkGains(1e5, 100, 1e5)
	txs := []Transmission{{From: 0, To: 1}}
	powers, ok := p.ControlPowers(gains, txs, 1e6, []float64{1})
	if ok {
		t.Fatal("link beyond power budget should be infeasible")
	}
	if powers[0] > 1 {
		t.Fatalf("returned power %v exceeds cap", powers[0])
	}
}

func TestControlPowersEmpty(t *testing.T) {
	p := paperParams()
	powers, ok := p.ControlPowers(nil, nil, 1e6, nil)
	if !ok || len(powers) != 0 {
		t.Fatal("empty transmission set should be trivially feasible")
	}
}

// TestControlPowersMonotoneFromCaps verifies that when the cap vector is
// feasible, the computed minimal powers never exceed the caps and always
// meet the threshold — on random geometries.
func TestControlPowersMonotoneFromCaps(t *testing.T) {
	p := paperParams()
	src := rng.New(21)
	prop := p.Prop
	for trial := 0; trial < 100; trial++ {
		// Random 3-link layout in a 2 km square.
		n := 6
		xs := make([][2]float64, n)
		for i := range xs {
			xs[i] = [2]float64{src.Uniform(0, 2000), src.Uniform(0, 2000)}
		}
		gains := make([][]float64, n)
		for i := range gains {
			gains[i] = make([]float64, n)
			for j := range gains[i] {
				if i == j {
					continue
				}
				d := math.Hypot(xs[i][0]-xs[j][0], xs[i][1]-xs[j][1])
				gains[i][j] = prop.Gain(d)
			}
		}
		txs := []Transmission{{From: 0, To: 1}, {From: 2, To: 3}, {From: 4, To: 5}}
		caps := []float64{20, 20, 20}
		powers, ok := p.ControlPowers(gains, txs, 1.5e6, caps)
		if !ok {
			continue // random layout may be infeasible; nothing to check
		}
		for l, pw := range powers {
			if pw > caps[l]+1e-9 || pw < 0 {
				t.Fatalf("trial %d: power %v outside [0,%v]", trial, pw, caps[l])
			}
		}
		if !p.AllMeetThreshold(gains, withPowers(txs, powers), 1.5e6) {
			t.Fatalf("trial %d: ok=true but threshold unmet", trial)
		}
	}
}

func TestInterferenceFreeSINR(t *testing.T) {
	p := paperParams()
	g := p.Prop.Gain(500)
	s := p.InterferenceFreeSINR(g, 1, 1e6)
	want := g * 1 / (1e-20 * 1e6)
	if math.Abs(s-want)/want > 1e-12 {
		t.Errorf("InterferenceFreeSINR = %v, want %v", s, want)
	}
}
