// Package topology builds the multi-hop cellular network of the paper's
// Section II-A: base stations and mobile users placed in a deployment area,
// per-node radio/energy specifications, the propagation gain matrix, and
// the candidate directed links over which scheduling operates.
package topology

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"greencell/internal/energy"
	"greencell/internal/geom"
	"greencell/internal/radio"
	"greencell/internal/rng"
	"greencell/internal/spectrum"
	"greencell/internal/units"
)

// Kind distinguishes node roles.
type Kind int

// Node roles.
const (
	User Kind = iota + 1
	BaseStation
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case User:
		return "user"
	case BaseStation:
		return "base-station"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// NodeSpec is the per-role hardware description.
type NodeSpec struct {
	// MaxTxPowerW is P_i^max.
	MaxTxPowerW units.Power
	// Radios is the number of independent transceivers (0 = the paper's
	// single radio). With R radios a node can take part in up to R
	// simultaneous link-band activities — the multi-radio generalization
	// of constraint (22).
	Radios int
	// RecvPowerW is the constant receive power P_i^recv of eq. (23).
	RecvPowerW units.Power
	// ConstPowerW models E_i^const (antenna feed) as a constant power.
	ConstPowerW units.Power
	// IdlePowerW models E_i^idle as a constant power.
	IdlePowerW units.Power
	// Battery is the node's storage unit.
	Battery energy.BatterySpec
	// BatteryInitWh is the initial stored energy.
	BatteryInitWh units.Energy
	// Renewable is the node's renewable output process (Wh per slot).
	Renewable energy.Process
	// Grid is the node's power-grid connection.
	Grid energy.GridConnection
}

// Node is one network node.
type Node struct {
	ID   int
	Kind Kind
	Pos  geom.Point
	Spec NodeSpec
}

// Link is a candidate directed communication link.
type Link struct {
	ID       int
	From, To int
	// Dist is the link length in meters.
	Dist float64
	// Bands is M_From ∩ M_To, the bands the link may use.
	Bands []int
}

// Network is the immutable physical network a simulation runs on.
type Network struct {
	Nodes    []Node
	Spectrum *spectrum.Model
	Avail    *spectrum.Availability
	Radio    radio.Params
	// Gains[t][r] is the propagation gain from node t to node r.
	Gains [][]float64
	Links []Link

	linkIdx  map[[2]int]int
	outLinks [][]int
	inLinks  [][]int
	users    []int
	bss      []int
}

// NumNodes returns the node count.
func (n *Network) NumNodes() int { return len(n.Nodes) }

// IsBS reports whether node i is a base station.
func (n *Network) IsBS(i int) bool { return n.Nodes[i].Kind == BaseStation }

// Users returns the IDs of all mobile users.
func (n *Network) Users() []int { return n.users }

// BaseStations returns the IDs of all base stations.
func (n *Network) BaseStations() []int { return n.bss }

// LinkID returns the candidate-link index for (from, to), if one exists.
func (n *Network) LinkID(from, to int) (int, bool) {
	id, ok := n.linkIdx[[2]int{from, to}]
	return id, ok
}

// OutLinks returns the candidate links leaving node i.
func (n *Network) OutLinks(i int) []int { return n.outLinks[i] }

// InLinks returns the candidate links entering node i.
func (n *Network) InLinks(i int) []int { return n.inLinks[i] }

// MaxTxPower returns P_i^max for node i.
func (n *Network) MaxTxPower(i int) units.Power { return n.Nodes[i].Spec.MaxTxPowerW }

// Radios returns node i's transceiver count (at least 1).
func (n *Network) Radios(i int) int {
	if r := n.Nodes[i].Spec.Radios; r > 1 {
		return r
	}
	return 1
}

// Config describes how to build a Network.
type Config struct {
	// Area is the deployment rectangle.
	Area geom.Rect
	// BSPositions places one base station per entry.
	BSPositions []geom.Point
	// NumUsers mobile users are placed uniformly at random in Area.
	NumUsers int
	// UserSpec and BSSpec describe the two node roles.
	UserSpec, BSSpec NodeSpec
	// Spectrum is the band model; users get random subsets, BSs all bands.
	Spectrum *spectrum.Model
	// Radio holds the physical-layer constants.
	Radio radio.Params
	// MaxNeighbors caps each node's outgoing candidate links to its k
	// nearest feasible receivers (0 = unlimited). Pruning keeps the
	// per-slot scheduling programs tractable.
	MaxNeighbors int
	// ShadowingSigmaDB adds static log-normal shadowing to the path-loss
	// model: each node pair's gain is scaled by 10^(X/10) with
	// X ~ N(0, σ²) dB, drawn once at build time and symmetric (shadowing
	// is reciprocal). Zero keeps the paper's deterministic C·d^−γ model.
	ShadowingSigmaDB float64
	// Hotspots, when non-empty, clusters users around these points instead
	// of uniform placement: each user picks a random hotspot plus a
	// Gaussian offset of HotspotSigma meters (clamped into Area). Models
	// the dense-crowd deployments the paper's introduction motivates.
	Hotspots []geom.Point
	// HotspotSigma is the cluster spread in meters (0 = 150 m default).
	HotspotSigma float64
	// OneHopOnly restricts candidate links to BS→user and BS→BS — the
	// "one-hop network" baseline architectures of Fig. 2(f).
	OneHopOnly bool
}

// ErrConfig reports an invalid topology configuration.
var ErrConfig = errors.New("topology: invalid config")

// Build constructs the network. Randomness (user placement, band subsets)
// is drawn from src.
func Build(cfg Config, src *rng.Source) (*Network, error) {
	if len(cfg.BSPositions) == 0 {
		return nil, fmt.Errorf("%w: no base stations", ErrConfig)
	}
	if cfg.NumUsers < 0 {
		return nil, fmt.Errorf("%w: negative NumUsers", ErrConfig)
	}
	if cfg.Spectrum == nil || cfg.Spectrum.NumBands() == 0 {
		return nil, fmt.Errorf("%w: no spectrum model", ErrConfig)
	}
	if err := cfg.UserSpec.Battery.Validate(); err != nil {
		return nil, fmt.Errorf("user spec: %w", err)
	}
	if err := cfg.BSSpec.Battery.Validate(); err != nil {
		return nil, fmt.Errorf("bs spec: %w", err)
	}

	n := &Network{Spectrum: cfg.Spectrum.Clone(), Radio: cfg.Radio}
	for _, pos := range cfg.BSPositions {
		n.Nodes = append(n.Nodes, Node{ID: len(n.Nodes), Kind: BaseStation, Pos: pos, Spec: perNodeSpec(cfg.BSSpec)})
	}
	placeSrc := src.Split("placement")
	for i := 0; i < cfg.NumUsers; i++ {
		n.Nodes = append(n.Nodes, Node{
			ID:   len(n.Nodes),
			Kind: User,
			Pos:  cfg.placeUser(placeSrc),
			Spec: perNodeSpec(cfg.UserSpec),
		})
	}
	for _, nd := range n.Nodes {
		if nd.Kind == BaseStation {
			n.bss = append(n.bss, nd.ID)
		} else {
			n.users = append(n.users, nd.ID)
		}
	}

	// Band availability: BSs see everything, users random subsets.
	n.Avail = spectrum.NewAvailability(len(n.Nodes), cfg.Spectrum)
	availSrc := src.Split("availability")
	for _, nd := range n.Nodes {
		if nd.Kind == BaseStation {
			n.Avail.GrantAll(nd.ID)
		} else {
			n.Avail.GrantRandomSubset(nd.ID, cfg.Spectrum, availSrc)
		}
	}

	// Gain matrix, optionally shadowed.
	nn := len(n.Nodes)
	shadowSrc := src.Split("shadowing")
	n.Gains = make([][]float64, nn)
	for i := range n.Gains {
		n.Gains[i] = make([]float64, nn)
	}
	for i := 0; i < nn; i++ {
		for j := i + 1; j < nn; j++ {
			g := cfg.Radio.Prop.Gain(geom.Distance(n.Nodes[i].Pos, n.Nodes[j].Pos))
			if cfg.ShadowingSigmaDB > 0 {
				db := shadowSrc.Normal(0, cfg.ShadowingSigmaDB)
				g *= math.Pow(10, db/10)
			}
			n.Gains[i][j] = g
			n.Gains[j][i] = g
		}
	}

	n.buildCandidateLinks(cfg)
	return n, nil
}

// placeUser draws one user position: uniform in the area, or clustered
// around a random hotspot when Hotspots is set.
func (cfg Config) placeUser(src *rng.Source) geom.Point {
	if len(cfg.Hotspots) == 0 {
		return cfg.Area.UniformPoint(src)
	}
	sigma := cfg.HotspotSigma
	if sigma == 0 {
		sigma = 150
	}
	h := cfg.Hotspots[src.Intn(len(cfg.Hotspots))]
	p := geom.Point{
		X: src.Normal(h.X, sigma),
		Y: src.Normal(h.Y, sigma),
	}
	// Clamp into the deployment area.
	if p.X < cfg.Area.MinX {
		p.X = cfg.Area.MinX
	}
	if p.X > cfg.Area.MaxX {
		p.X = cfg.Area.MaxX
	}
	if p.Y < cfg.Area.MinY {
		p.Y = cfg.Area.MinY
	}
	if p.Y > cfg.Area.MaxY {
		p.Y = cfg.Area.MaxY
	}
	return p
}

// perNodeSpec copies a role spec for one node, cloning any stateful
// renewable process so nodes never share phase counters.
func perNodeSpec(spec NodeSpec) NodeSpec {
	if c, ok := spec.Renewable.(energy.Cloner); ok {
		spec.Renewable = c.CloneProcess()
	}
	return spec
}

// buildCandidateLinks enumerates feasible directed links: a link exists
// when the pair shares at least one band and the interference-free SINR at
// P_max meets the threshold on the narrowest shared band; each node's
// out-links are then pruned to the MaxNeighbors nearest receivers.
func (n *Network) buildCandidateLinks(cfg Config) {
	type cand struct {
		to    int
		dist  float64
		bands []int
	}
	n.linkIdx = make(map[[2]int]int)
	n.outLinks = make([][]int, len(n.Nodes))
	n.inLinks = make([][]int, len(n.Nodes))

	for i := range n.Nodes {
		if cfg.OneHopOnly && n.Nodes[i].Kind != BaseStation {
			continue // users never transmit in the one-hop baseline
		}
		var cands []cand
		for j := range n.Nodes {
			if i == j {
				continue
			}
			bands := n.Avail.Common(i, j)
			if len(bands) == 0 {
				continue
			}
			// Feasibility screen on the widest possible noise floor: use the
			// largest width among shared bands (worst case noise).
			worstWidth := units.Bandwidth(0)
			for _, b := range bands {
				if w := n.Spectrum.Bands[b].Width.Max(); w > worstWidth {
					worstWidth = w
				}
			}
			s := n.Radio.InterferenceFreeSINR(n.Gains[i][j], n.Nodes[i].Spec.MaxTxPowerW.Watts(), worstWidth.Hz())
			if s < n.Radio.SINRThreshold {
				continue
			}
			cands = append(cands, cand{
				to:    j,
				dist:  geom.Distance(n.Nodes[i].Pos, n.Nodes[j].Pos),
				bands: bands,
			})
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].dist < cands[b].dist })
		// In the multi-hop architecture every node — including a base
		// station — talks to its nearest neighbors and relies on relaying
		// beyond them. In the one-hop baselines the base stations must keep
		// every feasible receiver or they could not reach far users at all.
		prune := cfg.MaxNeighbors > 0 && len(cands) > cfg.MaxNeighbors
		if cfg.OneHopOnly && n.Nodes[i].Kind == BaseStation {
			prune = false
		}
		if prune {
			cands = cands[:cfg.MaxNeighbors]
		}
		for _, c := range cands {
			id := len(n.Links)
			n.Links = append(n.Links, Link{ID: id, From: i, To: c.to, Dist: c.dist, Bands: c.bands})
			n.linkIdx[[2]int{i, c.to}] = id
			n.outLinks[i] = append(n.outLinks[i], id)
			n.inLinks[c.to] = append(n.inLinks[c.to], id)
		}
	}
}

// Manual assembles a Network from explicit nodes and directed links —
// used by tests and by callers that need a handcrafted layout instead of
// random placement. Gains are computed from node positions; each link's
// usable bands are the endpoints' common bands and must be non-empty.
func Manual(nodes []Node, sm *spectrum.Model, avail *spectrum.Availability, rp radio.Params, links [][2]int) (*Network, error) {
	if sm == nil || avail == nil {
		return nil, fmt.Errorf("%w: nil spectrum or availability", ErrConfig)
	}
	if avail.NumNodes() != len(nodes) {
		return nil, fmt.Errorf("%w: availability covers %d nodes, have %d",
			ErrConfig, avail.NumNodes(), len(nodes))
	}
	n := &Network{Spectrum: sm, Avail: avail, Radio: rp}
	n.Nodes = append(n.Nodes, nodes...)
	for i := range n.Nodes {
		n.Nodes[i].ID = i
		if n.Nodes[i].Kind == BaseStation {
			n.bss = append(n.bss, i)
		} else {
			n.users = append(n.users, i)
		}
	}
	nn := len(n.Nodes)
	n.Gains = make([][]float64, nn)
	for i := range n.Gains {
		n.Gains[i] = make([]float64, nn)
		for j := range n.Gains[i] {
			if i != j {
				n.Gains[i][j] = rp.Prop.Gain(geom.Distance(n.Nodes[i].Pos, n.Nodes[j].Pos))
			}
		}
	}
	n.linkIdx = make(map[[2]int]int)
	n.outLinks = make([][]int, nn)
	n.inLinks = make([][]int, nn)
	for _, pair := range links {
		from, to := pair[0], pair[1]
		if from < 0 || from >= nn || to < 0 || to >= nn || from == to {
			return nil, fmt.Errorf("%w: bad link (%d,%d)", ErrConfig, from, to)
		}
		bands := avail.Common(from, to)
		if len(bands) == 0 {
			return nil, fmt.Errorf("%w: link (%d,%d) has no common band", ErrConfig, from, to)
		}
		id := len(n.Links)
		n.Links = append(n.Links, Link{
			ID: id, From: from, To: to,
			Dist:  geom.Distance(n.Nodes[from].Pos, n.Nodes[to].Pos),
			Bands: bands,
		})
		n.linkIdx[[2]int{from, to}] = id
		n.outLinks[from] = append(n.outLinks[from], id)
		n.inLinks[to] = append(n.inLinks[to], id)
	}
	return n, nil
}

// Paper returns the simulation configuration of the paper's Section VI:
// a 2000m x 2000m area, base stations at (500,500) and (1500,500), 20
// users, the 5-band spectrum model, Γ=1, η=1e-20 W/Hz, C=62.5, γ=4,
// P_max 1 W (users) / 20 W (BS), renewables U[0,1] W / U[0,15] W, battery
// limits 60 Wh / 100 Wh per slot with p_max = 200 Wh.
func Paper() Config {
	return Config{
		Area:        geom.Square(2000),
		BSPositions: []geom.Point{{X: 500, Y: 500}, {X: 1500, Y: 500}},
		NumUsers:    20,
		Spectrum:    spectrum.Paper(),
		Radio: radio.Params{
			Prop:          radio.Propagation{C: 62.5, Gamma: 4},
			SINRThreshold: 1,
			// Raised from the paper's 1e-20 W/Hz so that minimal powers are
			// distance-dependent at this deployment scale: direct 2 km links
			// cost watts while 500 m relay hops cost milliwatts, which is
			// the effect the paper's multi-hop argument rests on (at 1e-20
			// every link closes at sub-milliwatt power and the architecture
			// comparison degenerates; see DESIGN.md).
			NoiseDensity: 3e-17,
		},
		UserSpec: NodeSpec{
			MaxTxPowerW: 1,
			RecvPowerW:  0.05,
			ConstPowerW: 0.1,
			IdlePowerW:  0.05,
			Battery: energy.BatterySpec{
				// Charge/discharge caps rescaled from the paper's 0.06 kWh
				// so charging draw, renewable supply, transmission energy
				// and demand sit at comparable magnitude (the paper's raw
				// constants mix units; see DESIGN.md). Capacity keeps the
				// buffer growing over most of the 100-slot horizon
				// (Fig. 2(e)).
				CapacityWh:     20,
				MaxChargeWh:    0.2,
				MaxDischargeWh: 0.2,
			},
			BatteryInitWh: 1,
			Renewable:     energy.UniformPower{MaxWh: 0.1},
			Grid:          energy.GridConnection{MaxDrawWh: 200, OnProb: 0.5},
		},
		BSSpec: NodeSpec{
			MaxTxPowerW: 20,
			RecvPowerW:  0.2,
			ConstPowerW: 2,
			IdlePowerW:  1,
			Battery: energy.BatterySpec{
				// Charge/discharge caps rescaled from the paper's 0.1 kWh
				// (see the user-spec note); capacity keeps the buffer
				// growing over the whole 100-slot horizon (Fig. 2(d)).
				CapacityWh:     10,
				MaxChargeWh:    0.1,
				MaxDischargeWh: 0.1,
			},
			BatteryInitWh: 0.5,
			Renewable:     energy.UniformPower{MaxWh: 0.3},
			Grid:          energy.GridConnection{MaxDrawWh: 200, AlwaysOn: true},
		},
		MaxNeighbors: 6,
	}
}
