package topology

import (
	"errors"
	"math"
	"testing"

	"greencell/internal/energy"
	"greencell/internal/geom"
	"greencell/internal/radio"
	"greencell/internal/rng"
	"greencell/internal/spectrum"
)

func TestBuildPaperTopology(t *testing.T) {
	net, err := Build(Paper(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if net.NumNodes() != 22 {
		t.Fatalf("NumNodes = %d, want 22", net.NumNodes())
	}
	if len(net.BaseStations()) != 2 || len(net.Users()) != 20 {
		t.Fatalf("BS/users = %d/%d, want 2/20", len(net.BaseStations()), len(net.Users()))
	}
	for _, b := range net.BaseStations() {
		if !net.IsBS(b) {
			t.Errorf("node %d should be a base station", b)
		}
		// BSs see all bands.
		if got := len(net.Avail.Bands(b)); got != net.Spectrum.NumBands() {
			t.Errorf("BS %d sees %d bands, want all %d", b, got, net.Spectrum.NumBands())
		}
	}
	for _, u := range net.Users() {
		if net.IsBS(u) {
			t.Errorf("node %d should be a user", u)
		}
		if !net.Avail.Has(u, 0) {
			t.Errorf("user %d missing the universal cellular band", u)
		}
		if !Paper().Area.Contains(net.Nodes[u].Pos) {
			t.Errorf("user %d placed outside the area: %v", u, net.Nodes[u].Pos)
		}
	}
	if len(net.Links) == 0 {
		t.Fatal("no candidate links")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(Paper(), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(Paper(), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Links) != len(b.Links) {
		t.Fatalf("same seed, different link counts: %d vs %d", len(a.Links), len(b.Links))
	}
	for i := range a.Nodes {
		if a.Nodes[i].Pos != b.Nodes[i].Pos {
			t.Fatalf("same seed, different node %d position", i)
		}
	}
}

func TestLinkIndicesConsistent(t *testing.T) {
	net, err := Build(Paper(), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range net.Links {
		id, ok := net.LinkID(l.From, l.To)
		if !ok || id != l.ID {
			t.Fatalf("LinkID(%d,%d) = %d,%v, want %d", l.From, l.To, id, ok, l.ID)
		}
		if len(l.Bands) == 0 {
			t.Fatalf("link %d has no bands", l.ID)
		}
		foundOut := false
		for _, o := range net.OutLinks(l.From) {
			if o == l.ID {
				foundOut = true
			}
		}
		foundIn := false
		for _, o := range net.InLinks(l.To) {
			if o == l.ID {
				foundIn = true
			}
		}
		if !foundOut || !foundIn {
			t.Fatalf("link %d missing from adjacency lists", l.ID)
		}
	}
}

func TestMaxNeighborsPrunesRelays(t *testing.T) {
	cfg := Paper()
	cfg.MaxNeighbors = 3
	net, err := Build(cfg, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range net.Users() {
		if got := len(net.OutLinks(u)); got > 3 {
			t.Errorf("user %d has %d out-links, want <= 3", u, got)
		}
	}
	// Multi-hop mode prunes base stations too.
	for _, b := range net.BaseStations() {
		if got := len(net.OutLinks(b)); got > 3 {
			t.Errorf("BS %d has %d out-links, want <= 3 in multi-hop mode", b, got)
		}
	}
}

func TestOneHopOnly(t *testing.T) {
	cfg := Paper()
	cfg.OneHopOnly = true
	cfg.MaxNeighbors = 3
	net, err := Build(cfg, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range net.Links {
		if !net.IsBS(l.From) {
			t.Fatalf("one-hop network has user-originated link %d->%d", l.From, l.To)
		}
	}
	// One-hop BSs keep all feasible receivers despite MaxNeighbors.
	for _, b := range net.BaseStations() {
		if got := len(net.OutLinks(b)); got <= 3 {
			t.Errorf("one-hop BS %d has only %d out-links; pruning should not apply", b, got)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	src := rng.New(1)
	cfg := Paper()
	cfg.BSPositions = nil
	if _, err := Build(cfg, src); !errors.Is(err, ErrConfig) {
		t.Errorf("no base stations: err = %v", err)
	}
	cfg = Paper()
	cfg.NumUsers = -1
	if _, err := Build(cfg, src); !errors.Is(err, ErrConfig) {
		t.Errorf("negative users: err = %v", err)
	}
	cfg = Paper()
	cfg.Spectrum = nil
	if _, err := Build(cfg, src); !errors.Is(err, ErrConfig) {
		t.Errorf("nil spectrum: err = %v", err)
	}
	cfg = Paper()
	cfg.UserSpec.Battery.MaxChargeWh = 1e9
	if _, err := Build(cfg, src); err == nil {
		t.Error("invalid battery spec accepted")
	}
}

func TestGainMatrixSymmetricGeometry(t *testing.T) {
	net, err := Build(Paper(), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range net.Nodes {
		if net.Gains[i][i] != 0 {
			t.Errorf("self-gain should be zero")
		}
		for j := range net.Nodes {
			// Equal C and gamma for all nodes -> symmetric gains.
			if net.Gains[i][j] != net.Gains[j][i] {
				t.Errorf("gain asymmetry between %d and %d", i, j)
			}
		}
	}
}

func TestManual(t *testing.T) {
	sm := spectrum.Paper()
	ns := []Node{
		{Kind: BaseStation, Pos: geom.Point{X: 0, Y: 0}},
		{Kind: User, Pos: geom.Point{X: 100, Y: 0}},
	}
	avail := spectrum.NewAvailability(2, sm)
	avail.GrantAll(0)
	avail.GrantAll(1)
	rp := radio.Params{Prop: radio.Propagation{C: 62.5, Gamma: 4}, SINRThreshold: 1, NoiseDensity: 1e-20}
	net, err := Manual(ns, sm, avail, rp, [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Links) != 1 || net.Links[0].Dist != 100 {
		t.Fatalf("manual link wrong: %+v", net.Links)
	}
	if _, err := Manual(ns, sm, avail, rp, [][2]int{{0, 0}}); err == nil {
		t.Error("self-link accepted")
	}
	if _, err := Manual(ns, sm, avail, rp, [][2]int{{0, 5}}); err == nil {
		t.Error("out-of-range link accepted")
	}
	small := spectrum.NewAvailability(1, sm)
	if _, err := Manual(ns, sm, small, rp, nil); err == nil {
		t.Error("availability size mismatch accepted")
	}
}

func TestPaperSpecSanity(t *testing.T) {
	cfg := Paper()
	if err := cfg.UserSpec.Battery.Validate(); err != nil {
		t.Errorf("user battery spec: %v", err)
	}
	if err := cfg.BSSpec.Battery.Validate(); err != nil {
		t.Errorf("BS battery spec: %v", err)
	}
	if cfg.BSSpec.MaxTxPowerW != 20 || cfg.UserSpec.MaxTxPowerW != 1 {
		t.Error("paper transmit powers wrong")
	}
	if _, ok := cfg.UserSpec.Renewable.(energy.UniformPower); !ok {
		t.Error("user renewable should be uniform")
	}
	if cfg.UserSpec.Grid.AlwaysOn || !cfg.BSSpec.Grid.AlwaysOn {
		t.Error("grid connectivity roles wrong")
	}
}

func TestHotspotPlacementClusters(t *testing.T) {
	base := Paper()
	base.NumUsers = 40

	clustered := base
	clustered.Hotspots = []geom.Point{{X: 500, Y: 500}, {X: 1500, Y: 1500}}
	clustered.HotspotSigma = 100

	uniNet, err := Build(base, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	hotNet, err := Build(clustered, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}

	meanMinDist := func(net *Network, pts []geom.Point) float64 {
		sum := 0.0
		for _, u := range net.Users() {
			best := math.Inf(1)
			for _, h := range pts {
				if d := geom.Distance(net.Nodes[u].Pos, h); d < best {
					best = d
				}
			}
			sum += best
		}
		return sum / float64(len(net.Users()))
	}
	pts := clustered.Hotspots
	hot := meanMinDist(hotNet, pts)
	uni := meanMinDist(uniNet, pts)
	if hot >= uni/2 {
		t.Errorf("hotspot users not clustered: mean dist %v vs uniform %v", hot, uni)
	}
	// All placements stay inside the area.
	for _, u := range hotNet.Users() {
		if !clustered.Area.Contains(hotNet.Nodes[u].Pos) {
			t.Fatalf("user %d outside area: %v", u, hotNet.Nodes[u].Pos)
		}
	}
}

func TestHotspotSigmaDefault(t *testing.T) {
	cfg := Paper()
	cfg.NumUsers = 10
	cfg.Hotspots = []geom.Point{{X: 1000, Y: 1000}}
	net, err := Build(cfg, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range net.Users() {
		if d := geom.Distance(net.Nodes[u].Pos, cfg.Hotspots[0]); d > 1000 {
			t.Errorf("user %d suspiciously far (%vm) for default sigma", u, d)
		}
	}
}

func TestShadowing(t *testing.T) {
	base := Paper()
	base.NumUsers = 6
	plain, err := Build(base, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	shadowed := base
	shadowed.ShadowingSigmaDB = 8
	net, err := Build(shadowed, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	// Same placement (same seed), different gains; still symmetric and
	// positive, and the log-ratio spread matches the requested sigma's
	// order of magnitude.
	differs := 0
	for i := 0; i < net.NumNodes(); i++ {
		for j := i + 1; j < net.NumNodes(); j++ {
			if net.Gains[i][j] != net.Gains[j][i] {
				t.Fatalf("shadowed gains asymmetric at (%d,%d)", i, j)
			}
			if net.Gains[i][j] <= 0 {
				t.Fatalf("non-positive shadowed gain at (%d,%d)", i, j)
			}
			ratio := net.Gains[i][j] / plain.Gains[i][j]
			if math.Abs(ratio-1) > 1e-12 {
				differs++
			}
			if db := 10 * math.Log10(ratio); math.Abs(db) > 5*8 {
				t.Fatalf("shadowing of %.1f dB is implausible for sigma=8", db)
			}
		}
	}
	if differs == 0 {
		t.Fatal("shadowing changed no gains")
	}
}

func TestShadowingDeterministic(t *testing.T) {
	cfg := Paper()
	cfg.NumUsers = 4
	cfg.ShadowingSigmaDB = 6
	a, err := Build(cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Gains {
		for j := range a.Gains[i] {
			if a.Gains[i][j] != b.Gains[i][j] {
				t.Fatal("shadowing not deterministic per seed")
			}
		}
	}
}
