package mdp

import (
	"math"
	"testing"

	"greencell/internal/rng"
)

func TestValidate(t *testing.T) {
	m := Reference()
	if err := m.Validate(); err != nil {
		t.Fatalf("reference model invalid: %v", err)
	}
	bad := *m
	bad.Prob = []float64{0.5, 0.5, 0.5, 0.5}
	if bad.Validate() == nil {
		t.Error("probabilities not summing to 1 accepted")
	}
	bad = *m
	bad.QMax = 0
	if bad.Validate() == nil {
		t.Error("zero queue capacity accepted")
	}
	bad = *m
	bad.Renew = nil
	bad.Prob = nil
	if bad.Validate() == nil {
		t.Error("empty renewable distribution accepted")
	}
}

func TestStepDynamics(t *testing.T) {
	m := Reference()
	s := State{Q: 10, B: 5}

	// Transmit with battery preference and no renewable: demand 3, battery
	// covers 2 (rate cap), grid 1.
	o := m.Step(s, Action{Transmit: true, UseBattery: true}, 0)
	if !o.Feasible {
		t.Fatal("feasible action reported infeasible")
	}
	if o.Served != 4 || o.Next.Q != 6 {
		t.Errorf("served/Q = %d/%d, want 4/6", o.Served, o.Next.Q)
	}
	if o.Next.B != 3 || o.GridUnits != 1 {
		t.Errorf("B/grid = %d/%d, want 3/1", o.Next.B, o.GridUnits)
	}

	// Pure grid: demand 3, no battery.
	o = m.Step(s, Action{Transmit: true}, 0)
	if o.GridUnits != 3 || o.Next.B != 5 {
		t.Errorf("grid-only: grid/B = %d/%d, want 3/5", o.GridUnits, o.Next.B)
	}

	// Renewable covers everything; the spill charges the battery.
	o = m.Step(s, Action{}, 3)
	if o.GridUnits != 0 {
		t.Errorf("grid = %d, want 0 with renewable 3 >= demand 1", o.GridUnits)
	}
	if o.Next.B != 7 { // spill 2, within charge rate
		t.Errorf("B = %d, want 7 (2 units of spill)", o.Next.B)
	}

	// Grid charging.
	o = m.Step(s, Action{GridCharge: true}, 0)
	if o.Next.B != 7 || o.GridUnits != 1+2 {
		t.Errorf("charge: B/grid = %d/%d, want 7/3", o.Next.B, o.GridUnits)
	}
}

func TestStepInfeasibleCases(t *testing.T) {
	m := Reference()
	// Queue overflow.
	o := m.Step(State{Q: m.QMax, B: 0}, Action{Admit: true}, 0)
	if o.Feasible {
		t.Error("overflowing admission accepted")
	}
	// Grid cap exceeded: huge demand with tiny cap.
	small := *m
	small.GridCap = 0
	o = small.Step(State{Q: 5, B: 0}, Action{Transmit: true}, 0)
	if o.Feasible {
		t.Error("demand beyond the grid cap accepted")
	}
}

func TestComplementarity(t *testing.T) {
	m := Reference()
	// UseBattery discharging blocks grid charging in the same slot.
	o := m.Step(State{Q: 5, B: 5}, Action{Transmit: true, UseBattery: true, GridCharge: true}, 0)
	if !o.Feasible {
		t.Fatal("action infeasible")
	}
	// Demand 3: battery gives 2, grid 1; charging must NOT happen.
	if o.Next.B != 3 {
		t.Errorf("B = %d, want 3 (no simultaneous charge)", o.Next.B)
	}
}

func TestSolveAverageCost(t *testing.T) {
	m := Reference()
	sol, err := SolveAverageCost(m, 1e-7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Iterations <= 1 {
		t.Errorf("suspiciously fast convergence: %d sweeps", sol.Iterations)
	}
	// With λ=2 per packet and cheap service, admission should pay: the
	// optimal average cost must be negative (reward exceeds energy cost).
	if sol.AvgCost >= 0 {
		t.Errorf("optimal average cost %v, want negative (profitable admission)", sol.AvgCost)
	}
}

// TestDPDominatesLyapunov: the DP policy is optimal for the model, so its
// simulated long-run cost must not exceed the Lyapunov policy's, and the
// Lyapunov policy must close most of the gap at large V.
func TestDPDominatesLyapunov(t *testing.T) {
	m := Reference()
	sol, err := SolveAverageCost(m, 1e-7, 0)
	if err != nil {
		t.Fatal(err)
	}
	const T = 60000
	dpCost, _, err := Simulate(m, sol, T, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	// Simulated DP cost ~ solved average cost.
	if math.Abs(dpCost-sol.AvgCost) > 0.1*(1+math.Abs(sol.AvgCost)) {
		t.Errorf("simulated DP cost %v far from solved %v", dpCost, sol.AvgCost)
	}

	for _, v := range []float64{0.5, 2, 10} {
		lyapCost, _, err := Simulate(m, Lyapunov{V: v}, T, rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		if lyapCost < dpCost-0.05*(1+math.Abs(dpCost)) {
			t.Errorf("V=%v: Lyapunov %v beats the DP optimum %v", v, lyapCost, dpCost)
		}
		t.Logf("V=%-4v lyapunov=%.4f  dp=%.4f  gap=%.1f%%",
			v, lyapCost, dpCost, 100*(lyapCost-dpCost)/math.Abs(dpCost))
		if v == 10 {
			gap := (lyapCost - dpCost) / math.Abs(dpCost)
			if gap > 0.35 {
				t.Errorf("V=10 gap %.0f%% too large — drift policy should approach the optimum", 100*gap)
			}
		}
	}
}

// TestCurseOfDimensionality measures the state-space growth the paper
// complains about: doubling each quantization axis quadruples the states.
func TestCurseOfDimensionality(t *testing.T) {
	m := Reference()
	base := m.NumStates()
	big := *m
	big.QMax = 2 * m.QMax
	big.BattMax = 2 * m.BattMax
	if got := big.NumStates(); got < 4*base-2*(m.QMax+m.BattMax)-4 {
		t.Errorf("states %d -> %d: expected ~4x growth", base, got)
	}
}

func TestSimulateRejectsBadModel(t *testing.T) {
	bad := Reference()
	bad.Prob = []float64{1}
	if _, _, err := Simulate(bad, Lyapunov{V: 1}, 10, rng.New(1)); err == nil {
		t.Error("invalid model accepted")
	}
}

// Property: Step keeps the state inside the boxes for any feasible action.
func TestStepStateBoundsProperty(t *testing.T) {
	m := Reference()
	src := rng.New(808)
	for trial := 0; trial < 5000; trial++ {
		s := State{Q: src.Intn(m.QMax + 1), B: src.Intn(m.BattMax + 1)}
		a := Action{
			Admit:      src.Bernoulli(0.5),
			Transmit:   src.Bernoulli(0.5),
			GridCharge: src.Bernoulli(0.5),
			UseBattery: src.Bernoulli(0.5),
		}
		r := m.Renew[src.Intn(len(m.Renew))]
		o := m.Step(s, a, r)
		if !o.Feasible {
			continue
		}
		if o.Next.Q < 0 || o.Next.Q > m.QMax {
			t.Fatalf("queue escaped: %+v -> %+v", s, o.Next)
		}
		if o.Next.B < 0 || o.Next.B > m.BattMax {
			t.Fatalf("battery escaped: %+v -> %+v", s, o.Next)
		}
		if o.GridUnits < 0 || o.GridUnits > m.GridCap {
			t.Fatalf("grid draw %d outside [0,%d]", o.GridUnits, m.GridCap)
		}
	}
}
