package mdp

import (
	"fmt"
	"math"

	"greencell/internal/rng"
)

// FinitePolicy is the exact optimal policy for a T-slot horizon, computed
// by backward induction. Unlike the average-cost Solution it is
// time-dependent: early slots invest (charge, admit) differently from the
// final slots, where there is no future to provision for.
type FinitePolicy struct {
	// ExpectedCost is the optimal expected total cost over the horizon
	// from the zero state.
	ExpectedCost float64
	// T is the horizon.
	T int

	// act[t][state][renewIdx] is the optimal action index at slot t.
	act [][][]int
}

// SolveFiniteHorizon computes the optimal T-slot policy and its expected
// total cost from the zero state.
func SolveFiniteHorizon(m *Model, T int) (*FinitePolicy, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if T <= 0 {
		return nil, fmt.Errorf("%w: horizon %d", ErrModel, T)
	}
	n := m.NumStates()
	// value[s] is the cost-to-go AFTER the current slot (terminal: zero —
	// leftover queue and battery carry no salvage value or penalty).
	value := make([]float64, n)
	next := make([]float64, n)
	fp := &FinitePolicy{T: T, act: make([][][]int, T)}

	for t := T - 1; t >= 0; t-- {
		fp.act[t] = make([][]int, n)
		for idx := 0; idx < n; idx++ {
			s := m.state(idx)
			fp.act[t][idx] = make([]int, len(m.Renew))
			exp := 0.0
			for ri, r := range m.Renew {
				best := math.Inf(1)
				bestA := 0
				for ai, a := range actions {
					o := m.Step(s, a, r)
					if !o.Feasible {
						continue
					}
					v := m.Cost(a, o) + value[m.index(o.Next)]
					if v < best-1e-12 {
						best = v
						bestA = ai
					}
				}
				if math.IsInf(best, 1) {
					return nil, fmt.Errorf("%w: state %+v has no feasible action", ErrModel, s)
				}
				fp.act[t][idx][ri] = bestA
				exp += m.Prob[ri] * best
			}
			next[idx] = exp
		}
		value, next = next, value
	}
	fp.ExpectedCost = value[m.index(State{})]
	return fp, nil
}

// SimulateFinite runs the time-dependent policy for its full horizon from
// the zero state and returns the realized total cost.
func SimulateFinite(m *Model, fp *FinitePolicy, src *rng.Source) (total float64, err error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	s := State{}
	for t := 0; t < fp.T; t++ {
		r := m.sampleRenew(src)
		ri := 0
		for i, v := range m.Renew {
			if v == r {
				ri = i
			}
		}
		a := actions[fp.act[t][m.index(s)][ri]]
		o := m.Step(s, a, r)
		if !o.Feasible {
			return 0, fmt.Errorf("mdp: finite policy chose infeasible action at t=%d %+v", t, s)
		}
		total += m.Cost(a, o)
		s = o.Next
	}
	return total, nil
}
