// Package mdp implements the baseline the paper argues against: solving
// the stochastic energy-cost problem by Dynamic Programming over a
// discretized state space ("previous approaches usually solve such
// problems based on Dynamic Programming and suffer from the 'curse of
// dimensionality'" — Section I).
//
// The model is the paper's essence shrunk to one base station and one
// session: a data queue fed by admission control and drained by
// transmission, a battery fed by a random renewable and by grid charging,
// and a convex cost on grid energy with an admission reward. The state is
// (queue level, battery level); the renewable output is observed at the
// start of each slot (as in the paper) and is i.i.d. over a finite set.
//
// Two policies run on the *same* quantized dynamics:
//
//   - Optimal: average-cost relative value iteration, which needs the full
//     renewable distribution and a state space that grows multiplicatively
//     with every quantization level (the curse the paper avoids).
//   - Lyapunov: the paper's drift-plus-penalty rule specialized to the
//     model — pick the action minimizing Q·ΔQ + z·Δx + V·(f(grid) − λ·k)
//     given the observed renewable, with z = x − V·γmax − d_max. It needs
//     no statistics at all.
//
// Tests verify that the DP policy's simulated average cost is never beaten
// by the Lyapunov policy and that the Lyapunov policy approaches it as V
// grows — the paper's Theorem 4 story, made concrete against a true
// optimum. A finite-horizon variant (SolveFiniteHorizon, backward
// induction) provides the exact T-slot optimum, whose per-slot value
// converges to the average-cost solution as T grows.
package mdp

import (
	"errors"
	"fmt"
	"math"

	"greencell/internal/rng"
)

// Model is the quantized single-BS system. All energies are integer units.
type Model struct {
	// QMax is the queue capacity in packets; admission that would overflow
	// is infeasible.
	QMax int
	// AdmitPkts is K: packets admitted when the admission action is on.
	AdmitPkts int
	// ServePkts is the link capacity per transmitting slot.
	ServePkts int
	// BattMax is the battery capacity in energy units.
	BattMax int
	// ChargeMax / DischargeMax are the per-slot battery rate limits.
	ChargeMax, DischargeMax int
	// FixedEnergy is the per-slot idle+antenna draw; TxEnergy is the extra
	// draw of a transmitting slot.
	FixedEnergy, TxEnergy int
	// GridCap is the per-slot grid draw limit.
	GridCap int
	// Renew lists the possible renewable outputs; Prob their probabilities
	// (summing to 1).
	Renew []int
	Prob  []float64
	// CostCoefA/B: f(g) = A·g² + B·g on grid units.
	CostCoefA, CostCoefB float64
	// Lambda is the admission reward per packet.
	Lambda float64
}

// Validate checks internal consistency.
func (m *Model) Validate() error {
	if m.QMax <= 0 || m.AdmitPkts <= 0 || m.ServePkts <= 0 {
		return fmt.Errorf("%w: queue parameters", ErrModel)
	}
	if m.BattMax < 0 || m.ChargeMax < 0 || m.DischargeMax < 0 {
		return fmt.Errorf("%w: battery parameters", ErrModel)
	}
	if m.FixedEnergy < 0 || m.TxEnergy < 0 || m.GridCap < 0 {
		return fmt.Errorf("%w: energy parameters", ErrModel)
	}
	if len(m.Renew) == 0 || len(m.Renew) != len(m.Prob) {
		return fmt.Errorf("%w: renewable distribution", ErrModel)
	}
	sum := 0.0
	for i, p := range m.Prob {
		if p < 0 || m.Renew[i] < 0 {
			return fmt.Errorf("%w: negative renewable entry", ErrModel)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("%w: probabilities sum to %v", ErrModel, sum)
	}
	return nil
}

// ErrModel reports an invalid model.
var ErrModel = errors.New("mdp: invalid model")

// State is (queue packets, battery units).
type State struct {
	Q, B int
}

// Action is one slot's decision.
type Action struct {
	// Admit pulls AdmitPkts from the Internet.
	Admit bool
	// Transmit serves min(Q, ServePkts) packets, costing TxEnergy.
	Transmit bool
	// GridCharge adds up to ChargeMax units from the grid.
	GridCharge bool
	// UseBattery discharges (instead of buying grid) to cover demand.
	UseBattery bool
}

// actions enumerates the 16 possibilities.
var actions = func() []Action {
	var out []Action
	for _, a := range []bool{false, true} {
		for _, t := range []bool{false, true} {
			for _, c := range []bool{false, true} {
				for _, u := range []bool{false, true} {
					out = append(out, Action{a, t, c, u})
				}
			}
		}
	}
	return out
}()

// Outcome is the deterministic result of an action under an observed
// renewable output.
type Outcome struct {
	Next State
	// GridUnits is the total grid draw (demand + charging).
	GridUnits int
	// Served is the number of packets transmitted.
	Served int
	// Feasible is false when demand cannot be covered or the queue would
	// overflow (such actions are excluded).
	Feasible bool
}

// Step applies action a in state s with observed renewable r.
//
// Complementarity (the paper's eq. (9)) holds by construction: charging
// and discharging are mutually exclusive action branches.
func (m *Model) Step(s State, a Action, r int) Outcome {
	demand := m.FixedEnergy
	served := 0
	if a.Transmit {
		demand += m.TxEnergy
		served = s.Q
		if served > m.ServePkts {
			served = m.ServePkts
		}
	}

	// Queue update; admission must fit.
	q := s.Q - served
	if a.Admit {
		if q+m.AdmitPkts > m.QMax {
			return Outcome{Feasible: false}
		}
		q += m.AdmitPkts
	}

	// Energy: renewable first, then battery (if chosen) up to limits, then
	// grid; leftover renewable charges the battery for free.
	b := s.B
	grid := 0
	need := demand - r
	spill := 0
	if need < 0 {
		spill = -need
		need = 0
	}
	discharged := 0
	if a.UseBattery && need > 0 {
		discharged = need
		if discharged > m.DischargeMax {
			discharged = m.DischargeMax
		}
		if discharged > b {
			discharged = b
		}
		need -= discharged
		b -= discharged
	}
	grid += need // demand remainder comes from the grid

	charge := 0
	if a.GridCharge && discharged == 0 {
		charge = m.ChargeMax
		if room := m.BattMax - b; charge > room {
			charge = room
		}
		grid += charge
		b += charge
	}
	// Free renewable spill into the battery (counts against the charge
	// rate limit jointly with grid charging).
	if discharged == 0 && spill > 0 {
		freeRoom := m.ChargeMax - charge
		if freeRoom > 0 {
			add := spill
			if add > freeRoom {
				add = freeRoom
			}
			if room := m.BattMax - b; add > room {
				add = room
			}
			b += add
		}
	}

	if grid > m.GridCap {
		return Outcome{Feasible: false}
	}
	return Outcome{Next: State{Q: q, B: b}, GridUnits: grid, Served: served, Feasible: true}
}

// Cost returns the slot cost of an outcome under action a:
// f(grid) − λ·admitted.
func (m *Model) Cost(a Action, o Outcome) float64 {
	g := float64(o.GridUnits)
	c := m.CostCoefA*g*g + m.CostCoefB*g
	if a.Admit {
		c -= m.Lambda * float64(m.AdmitPkts)
	}
	return c
}

// NumStates returns the state-space size (the curse's growth knob).
func (m *Model) NumStates() int { return (m.QMax + 1) * (m.BattMax + 1) }

func (m *Model) index(s State) int { return s.Q*(m.BattMax+1) + s.B }

func (m *Model) state(idx int) State {
	return State{Q: idx / (m.BattMax + 1), B: idx % (m.BattMax + 1)}
}

// Policy maps (state, observed renewable) to an action.
type Policy interface {
	Act(m *Model, s State, r int) Action
}

// Solution is a solved MDP.
type Solution struct {
	// AvgCost is the optimal long-run average cost per slot.
	AvgCost float64
	// Iterations is the number of value-iteration sweeps.
	Iterations int

	// act[state][renewIdx] is the optimal action index.
	act [][]int
}

// Act implements Policy.
func (s *Solution) Act(m *Model, st State, r int) Action {
	ri := 0
	for i, v := range m.Renew {
		if v == r {
			ri = i
		}
	}
	return actions[s.act[m.index(st)][ri]]
}

// SolveAverageCost runs relative value iteration for the average-cost
// criterion until the value-difference span falls below eps (or maxIter).
// The renewable is observed before acting, so the Bellman operator
// minimizes per renewable outcome and averages over the distribution.
func SolveAverageCost(m *Model, eps float64, maxIter int) (*Solution, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if eps <= 0 {
		eps = 1e-9
	}
	if maxIter <= 0 {
		maxIter = 100000
	}
	n := m.NumStates()
	h := make([]float64, n)
	next := make([]float64, n)
	sol := &Solution{act: make([][]int, n)}
	for i := range sol.act {
		sol.act[i] = make([]int, len(m.Renew))
	}

	for iter := 0; iter < maxIter; iter++ {
		for idx := 0; idx < n; idx++ {
			s := m.state(idx)
			exp := 0.0
			for ri, r := range m.Renew {
				best := math.Inf(1)
				bestA := 0
				for ai, a := range actions {
					o := m.Step(s, a, r)
					if !o.Feasible {
						continue
					}
					v := m.Cost(a, o) + h[m.index(o.Next)]
					if v < best-1e-12 {
						best = v
						bestA = ai
					}
				}
				if math.IsInf(best, 1) {
					return nil, fmt.Errorf("%w: state %+v has no feasible action", ErrModel, s)
				}
				sol.act[idx][ri] = bestA
				exp += m.Prob[ri] * best
			}
			next[idx] = exp
		}
		// Relative value iteration with the aperiodicity (damping)
		// transformation h ← (1−τ)h + τ(Th − ref): periodic optimal chains
		// make the undamped span oscillate forever.
		const tau = 0.5
		ref := next[0]
		span := math.Inf(-1)
		spanLo := math.Inf(1)
		for idx := 0; idx < n; idx++ {
			d := next[idx] - h[idx]
			if d > span {
				span = d
			}
			if d < spanLo {
				spanLo = d
			}
		}
		for idx := 0; idx < n; idx++ {
			h[idx] = (1-tau)*h[idx] + tau*(next[idx]-ref)
		}
		sol.Iterations = iter + 1
		if span-spanLo < eps {
			sol.AvgCost = (span + spanLo) / 2
			return sol, nil
		}
	}
	return nil, fmt.Errorf("mdp: value iteration did not converge in %d sweeps", maxIter)
}

// Lyapunov is the drift-plus-penalty policy specialized to the model: it
// evaluates every feasible action against the observed renewable and picks
// the minimizer of
//
//	Q·(arrivals − service) + z·Δx + V·(f(grid) − λ·admitted),
//
// with z = x − V·γmax − d_max — the paper's S2+S4 logic without any
// distributional knowledge.
type Lyapunov struct {
	V float64
}

// Act implements Policy.
func (l Lyapunov) Act(m *Model, s State, r int) Action {
	gammaMax := 2*m.CostCoefA*float64(m.GridCap) + m.CostCoefB
	z := float64(s.B) - l.V*gammaMax - float64(m.DischargeMax)
	best := math.Inf(1)
	bestA := actions[0]
	for _, a := range actions {
		o := m.Step(s, a, r)
		if !o.Feasible {
			continue
		}
		arr := 0
		if a.Admit {
			arr = m.AdmitPkts
		}
		drift := float64(s.Q)*float64(arr-o.Served) +
			z*float64(o.Next.B-s.B) +
			l.V*m.Cost(a, o)
		if drift < best {
			best = drift
			bestA = a
		}
	}
	return bestA
}

// Simulate runs a policy for T slots from the zero state and returns the
// average realized cost and the served-packet total.
func Simulate(m *Model, p Policy, T int, src *rng.Source) (avgCost, served float64, err error) {
	if err := m.Validate(); err != nil {
		return 0, 0, err
	}
	s := State{}
	total := 0.0
	for t := 0; t < T; t++ {
		r := m.sampleRenew(src)
		a := p.Act(m, s, r)
		o := m.Step(s, a, r)
		if !o.Feasible {
			return 0, 0, fmt.Errorf("mdp: policy chose infeasible action %+v at %+v", a, s)
		}
		total += m.Cost(a, o)
		served += float64(o.Served)
		s = o.Next
	}
	return total / float64(T), served, nil
}

func (m *Model) sampleRenew(src *rng.Source) int {
	u := src.Float64()
	acc := 0.0
	for i, p := range m.Prob {
		acc += p
		if u < acc {
			return m.Renew[i]
		}
	}
	return m.Renew[len(m.Renew)-1]
}

// Reference returns a small calibrated model used by tests, benchmarks and
// the ablation study.
func Reference() *Model {
	return &Model{
		QMax:         30,
		AdmitPkts:    3,
		ServePkts:    4,
		BattMax:      12,
		ChargeMax:    2,
		DischargeMax: 2,
		FixedEnergy:  1,
		TxEnergy:     2,
		GridCap:      8,
		Renew:        []int{0, 1, 2, 3},
		Prob:         []float64{0.25, 0.25, 0.25, 0.25},
		CostCoefA:    0.5,
		CostCoefB:    0.2,
		Lambda:       2.0,
	}
}
