package mdp

import "testing"

// The curse of dimensionality, measured: value-iteration wall time as each
// quantization axis doubles (state count roughly quadruples per step).
func benchSolve(b *testing.B, scale int) {
	m := Reference()
	m.QMax *= scale
	m.BattMax *= scale
	b.ReportMetric(float64(m.NumStates()), "states")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveAverageCost(m, 1e-6, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValueIteration1x(b *testing.B) { benchSolve(b, 1) }
func BenchmarkValueIteration2x(b *testing.B) { benchSolve(b, 2) }
func BenchmarkValueIteration4x(b *testing.B) { benchSolve(b, 4) }
