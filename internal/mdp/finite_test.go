package mdp

import (
	"math"
	"testing"

	"greencell/internal/rng"
)

func TestSolveFiniteHorizonValidation(t *testing.T) {
	m := Reference()
	if _, err := SolveFiniteHorizon(m, 0); err == nil {
		t.Error("zero horizon accepted")
	}
	bad := *m
	bad.Prob = []float64{1}
	if _, err := SolveFiniteHorizon(&bad, 5); err == nil {
		t.Error("invalid model accepted")
	}
}

// TestFiniteMatchesSimulation: the backward-induction expected cost must
// match the Monte-Carlo average of simulating the extracted policy.
func TestFiniteMatchesSimulation(t *testing.T) {
	m := Reference()
	const T = 40
	fp, err := SolveFiniteHorizon(m, T)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(33)
	const reps = 4000
	sum := 0.0
	for i := 0; i < reps; i++ {
		total, err := SimulateFinite(m, fp, src)
		if err != nil {
			t.Fatal(err)
		}
		sum += total
	}
	mc := sum / reps
	if math.Abs(mc-fp.ExpectedCost) > 0.05*(1+math.Abs(fp.ExpectedCost)) {
		t.Errorf("Monte-Carlo %v vs backward induction %v", mc, fp.ExpectedCost)
	}
}

// TestFiniteDominatesStationaryPolicies: the finite-horizon optimum cannot
// be beaten in expectation by the Lyapunov policy over the same horizon.
func TestFiniteDominatesStationaryPolicies(t *testing.T) {
	m := Reference()
	const T = 40
	fp, err := SolveFiniteHorizon(m, T)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(44)
	const reps = 3000
	lyapSum := 0.0
	ly := Lyapunov{V: 10}
	for i := 0; i < reps; i++ {
		s := State{}
		for t2 := 0; t2 < T; t2++ {
			r := m.sampleRenew(src)
			a := ly.Act(m, s, r)
			o := m.Step(s, a, r)
			lyapSum += m.Cost(a, o)
			s = o.Next
		}
	}
	lyapAvg := lyapSum / reps
	if fp.ExpectedCost > lyapAvg+0.05*(1+math.Abs(lyapAvg)) {
		t.Errorf("finite optimum %v beaten by Lyapunov %v", fp.ExpectedCost, lyapAvg)
	}
}

// TestFiniteConvergesToAverageCost: V_T/T approaches the average-cost
// optimum as the horizon grows.
func TestFiniteConvergesToAverageCost(t *testing.T) {
	m := Reference()
	avg, err := SolveAverageCost(m, 1e-7, 0)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := SolveFiniteHorizon(m, 200)
	if err != nil {
		t.Fatal(err)
	}
	perSlot := fp.ExpectedCost / 200
	if math.Abs(perSlot-avg.AvgCost) > 0.1*(1+math.Abs(avg.AvgCost)) {
		t.Errorf("finite per-slot %v far from average-cost %v", perSlot, avg.AvgCost)
	}
}
