package trace

import (
	"strings"
	"testing"

	"greencell/internal/core"
)

func TestRoundTrip(t *testing.T) {
	holds := true
	recs := []Record{
		{Slot: 0, EnergyCost: 1.5, DeliveredPkts: []float64{1, 2}},
		{Slot: 1, GridWh: 0.5, DriftHolds: &holds},
	}
	var b strings.Builder
	w := NewWriter(&b)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].EnergyCost != 1.5 || got[1].GridWh != 0.5 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got[1].DriftHolds == nil || !*got[1].DriftHolds {
		t.Error("DriftHolds lost in round trip")
	}
	if got[0].DriftHolds != nil {
		t.Error("absent DriftHolds should stay nil")
	}
}

func TestFromSlot(t *testing.T) {
	sr := &core.SlotResult{
		Slot:          3,
		EnergyCost:    9,
		DeliveredPkts: []float64{4},
		Audit:         &core.DriftAudit{B: 1, SquareTerms: 0.5},
	}
	r := FromSlot(sr)
	if r.Slot != 3 || r.EnergyCost != 9 || len(r.DeliveredPkts) != 1 {
		t.Fatalf("FromSlot = %+v", r)
	}
	if r.DriftHolds == nil || !*r.DriftHolds {
		t.Error("audit verdict missing")
	}
	// The copy must be independent of the source slice.
	sr.DeliveredPkts[0] = 99
	if r.DeliveredPkts[0] == 99 {
		t.Error("DeliveredPkts aliased")
	}
}

func TestReadAllBadInput(t *testing.T) {
	if _, err := ReadAll(strings.NewReader("{\"slot\": }")); err == nil {
		t.Error("malformed JSON accepted")
	}
}
