// Package trace records structured per-slot simulation events as JSON
// Lines, for offline analysis and debugging (cmd/greencellsim -trace).
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"greencell/internal/core"
)

// Record is one slot's structured event summary.
type Record struct {
	Slot             int       `json:"slot"`
	EnergyCost       float64   `json:"energy_cost"`
	GridWh           float64   `json:"grid_wh"`
	AdmittedPkts     float64   `json:"admitted_pkts"`
	DeliveredPkts    []float64 `json:"delivered_pkts"`
	ScheduledLinks   int       `json:"scheduled_links"`
	TxEnergyWh       float64   `json:"tx_energy_wh"`
	DemandWh         float64   `json:"demand_wh"`
	RenewableWh      float64   `json:"renewable_wh"`
	DeficitWh        float64   `json:"deficit_wh"`
	DataBacklogBS    float64   `json:"data_backlog_bs"`
	DataBacklogUsers float64   `json:"data_backlog_users"`
	BatteryWhBS      float64   `json:"battery_wh_bs"`
	BatteryWhUsers   float64   `json:"battery_wh_users"`
	DriftHolds       *bool     `json:"drift_holds,omitempty"`
	// Stage timings (nanoseconds), present only on instrumented runs
	// (core.Config.Instrument). The field names carry the _ns marker of
	// the metrics determinism convention (see internal/metrics).
	S1NS    int64 `json:"s1_ns,omitempty"`
	S2NS    int64 `json:"s2_ns,omitempty"`
	S3NS    int64 `json:"s3_ns,omitempty"`
	QueueNS int64 `json:"queue_ns,omitempty"`
	S4NS    int64 `json:"s4_ns,omitempty"`
	TotalNS int64 `json:"total_ns,omitempty"`
}

// FromSlot converts a controller slot result.
func FromSlot(sr *core.SlotResult) Record {
	r := Record{
		Slot:             sr.Slot,
		EnergyCost:       sr.EnergyCost.Value(),
		GridWh:           sr.GridWh.Wh(),
		AdmittedPkts:     sr.AdmittedPkts,
		DeliveredPkts:    append([]float64(nil), sr.DeliveredPkts...),
		ScheduledLinks:   sr.ScheduledLinks,
		TxEnergyWh:       sr.TxEnergyWh.Wh(),
		DemandWh:         sr.DemandWh.Wh(),
		RenewableWh:      sr.RenewableWh.Wh(),
		DeficitWh:        sr.DeficitWh.Wh(),
		DataBacklogBS:    sr.DataBacklogBS,
		DataBacklogUsers: sr.DataBacklogUsers,
		BatteryWhBS:      sr.BatteryWhBS.Wh(),
		BatteryWhUsers:   sr.BatteryWhUsers.Wh(),
	}
	if sr.Audit != nil {
		holds := sr.Audit.Holds()
		r.DriftHolds = &holds
	}
	if st := sr.Stages; st != nil {
		r.S1NS, r.S2NS, r.S3NS = st.S1NS, st.S2NS, st.S3NS
		r.QueueNS, r.S4NS, r.TotalNS = st.QueueNS, st.S4NS, st.TotalNS
	}
	return r
}

// Writer emits Records as JSON Lines. Close flushes buffered output.
type Writer struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

// Write emits one record.
func (w *Writer) Write(r Record) error { return w.enc.Encode(r) }

// Close flushes the writer (it does not close the underlying stream).
func (w *Writer) Close() error { return w.bw.Flush() }

// ReadAll parses a JSON-Lines trace back into records.
func ReadAll(r io.Reader) ([]Record, error) {
	dec := json.NewDecoder(r)
	var out []Record
	for dec.More() {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
	return out, nil
}
