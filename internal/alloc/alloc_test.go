package alloc

import (
	"testing"

	"greencell/internal/traffic"
)

func req(backlogs map[int]map[int]float64, lambdaV float64, sessions int) *Request {
	var ss []traffic.Session
	for i := 0; i < sessions; i++ {
		ss = append(ss, traffic.Session{ID: i, Dest: 100 + i, DemandPkts: 10, MaxAdmission: 10})
	}
	return &Request{
		Sessions:     ss,
		BaseStations: []int{0, 1},
		Backlog: func(s, node int) float64 {
			return backlogs[s][node]
		},
		LambdaV: lambdaV,
	}
}

func TestPicksSmallestBacklogSource(t *testing.T) {
	d, err := Decide(req(map[int]map[int]float64{
		0: {0: 50, 1: 20},
		1: {0: 5, 1: 30},
	}, 100, 2))
	if err != nil {
		t.Fatal(err)
	}
	if d.Source[0] != 1 {
		t.Errorf("session 0 source = %d, want 1", d.Source[0])
	}
	if d.Source[1] != 0 {
		t.Errorf("session 1 source = %d, want 0", d.Source[1])
	}
}

func TestAdmissionRule(t *testing.T) {
	// Session 0: backlog below λV -> admit K_max. Session 1: above -> 0.
	d, err := Decide(req(map[int]map[int]float64{
		0: {0: 99, 1: 150},
		1: {0: 101, 1: 150},
	}, 100, 2))
	if err != nil {
		t.Fatal(err)
	}
	if d.Admit[0] != 10 {
		t.Errorf("session 0 admit = %v, want K_max=10", d.Admit[0])
	}
	if d.Admit[1] != 0 {
		t.Errorf("session 1 admit = %v, want 0", d.Admit[1])
	}
}

func TestAdmissionBoundary(t *testing.T) {
	// Q == λV is NOT strictly less: no admission.
	d, err := Decide(req(map[int]map[int]float64{0: {0: 100, 1: 100}}, 100, 1))
	if err != nil {
		t.Fatal(err)
	}
	if d.Admit[0] != 0 {
		t.Errorf("admit at boundary = %v, want 0", d.Admit[0])
	}
}

func TestTieBreakDeterministic(t *testing.T) {
	for i := 0; i < 5; i++ {
		d, err := Decide(req(map[int]map[int]float64{0: {0: 7, 1: 7}}, 100, 1))
		if err != nil {
			t.Fatal(err)
		}
		if d.Source[0] != 0 {
			t.Errorf("tie should break to lowest node ID, got %d", d.Source[0])
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := Decide(&Request{Backlog: func(int, int) float64 { return 0 }}); err == nil {
		t.Error("no base stations accepted")
	}
	if _, err := Decide(&Request{BaseStations: []int{0}}); err == nil {
		t.Error("nil backlog accessor accepted")
	}
}

func TestNoSessions(t *testing.T) {
	d, err := Decide(req(nil, 100, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Source) != 0 || len(d.Admit) != 0 {
		t.Error("empty session set should give empty decision")
	}
}
