// Package alloc solves the paper's per-slot resource-allocation subproblem
// S2: for every session s, pick the source base station s_s(t) with the
// smallest data backlog Q_i^s(t), and admit
//
//	k_s(t) = K_s^max  if Q_{s_s}^s(t) − λV < 0,   0 otherwise
//
// (Section IV-C2). Ties on backlog are broken deterministically toward the
// lowest node ID — the paper breaks them randomly; a deterministic rule
// keeps runs reproducible and is distributionally equivalent here because
// ties essentially only occur at the all-zeros start.
package alloc

import (
	"errors"
	"fmt"

	"greencell/internal/traffic"
)

// Request is one slot's allocation problem.
type Request struct {
	// Sessions are the active sessions.
	Sessions []traffic.Session
	// BaseStations lists candidate source nodes.
	BaseStations []int
	// Backlog returns Q_i^s(t) for session index s (position in Sessions)
	// at node i.
	Backlog func(sessionIdx, node int) float64
	// LambdaV is the admission threshold λ·V.
	LambdaV float64
}

// Decision is the outcome of S2 for one slot.
type Decision struct {
	// Source[s] is the chosen source base station for session s.
	Source []int
	// Admit[s] is k_s(t), the packets admitted from the Internet.
	Admit []float64
}

// ErrRequest reports an invalid allocation request.
var ErrRequest = errors.New("alloc: invalid request")

// Decide solves S2.
func Decide(req *Request) (*Decision, error) {
	if len(req.BaseStations) == 0 {
		return nil, fmt.Errorf("%w: no base stations", ErrRequest)
	}
	if req.Backlog == nil {
		return nil, fmt.Errorf("%w: nil backlog accessor", ErrRequest)
	}
	d := &Decision{
		Source: make([]int, len(req.Sessions)),
		Admit:  make([]float64, len(req.Sessions)),
	}
	for s, sess := range req.Sessions {
		if sess.Uplink {
			// Uplink sessions originate at a fixed user; only the
			// admission rule applies.
			d.Source[s] = sess.Source
			if req.Backlog(s, sess.Source)-req.LambdaV < 0 {
				d.Admit[s] = sess.MaxAdmission
			}
			continue
		}
		best := req.BaseStations[0]
		bestQ := req.Backlog(s, best)
		for _, b := range req.BaseStations[1:] {
			//lint:allow nofloateq -- deterministic tie-break: equal backlogs must pick the lower node ID
			if q := req.Backlog(s, b); q < bestQ || (q == bestQ && b < best) {
				best, bestQ = b, q
			}
		}
		d.Source[s] = best
		if bestQ-req.LambdaV < 0 {
			d.Admit[s] = sess.MaxAdmission
		}
	}
	return d, nil
}
