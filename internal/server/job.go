package server

// This file holds the job types and the queued→running→done/failed/
// cancelled state machine. It also owns the server's only wall-clock
// reads (job lifecycle timestamps) and is on
// analysis.WallClockAllowedFiles: those timestamps surface exclusively in
// API responses, never in the metrics stream or any other reproducible
// artifact.

import (
	"fmt"
	"sync/atomic"
	"time"

	"greencell/internal/sim"
)

// now is the package's single wall-clock read, kept in this allowlisted
// file; the rest of the package timestamps through it.
func now() time.Time { return time.Now() }

// JobState is one node of the job lifecycle:
//
//	queued → running → done | failed | cancelled
//
// A drain interrupts a running job back to queued (without a terminal
// journal event), so a restarted daemon re-runs it; determinism makes the
// re-run equivalent.
type JobState string

// Job states.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state ends the job.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// JobRequest is the POST /v1/jobs body: a serializable scenario plus the
// seeds to replicate it over.
type JobRequest struct {
	// Spec is the scenario (sim.ScenarioSpec: preset plus overrides).
	Spec sim.ScenarioSpec `json:"spec"`
	// Seeds lists the replication seeds explicitly. Empty means
	// Replications consecutive seeds starting at the spec's seed.
	Seeds []int64 `json:"seeds,omitempty"`
	// Replications derives Seeds when they are not listed (default 1).
	Replications int `json:"replications,omitempty"`
	// DeadlineMS bounds the whole job's wall-clock runtime; an overrun
	// fails the job with a deadline error. 0 = no deadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// maxSeedsPerJob bounds one job's replication count; larger campaigns
// split into multiple jobs.
const maxSeedsPerJob = 4096

// Normalize validates the request and returns the resolved seed list. It
// is exported because the cluster coordinator (internal/cluster) applies
// the exact same validation to requests before sharding them, so a request
// the coordinator accepts is one every worker accepts too.
func (r *JobRequest) Normalize() ([]int64, error) {
	if err := r.Spec.Validate(); err != nil {
		return nil, err
	}
	if r.Replications < 0 {
		return nil, fmt.Errorf("replications: must be non-negative, got %d", r.Replications)
	}
	if len(r.Seeds) > 0 && r.Replications > 0 {
		return nil, fmt.Errorf("seeds and replications are mutually exclusive")
	}
	if r.DeadlineMS < 0 {
		return nil, fmt.Errorf("deadline_ms: must be non-negative, got %d", r.DeadlineMS)
	}
	seeds := r.Seeds
	if len(seeds) == 0 {
		n := r.Replications
		if n == 0 {
			n = 1
		}
		base := r.Spec.Seed
		if base == 0 {
			sc, err := r.Spec.Scenario()
			if err != nil {
				return nil, err
			}
			base = sc.Seed
		}
		seeds = sim.Seeds(base, n)
	}
	if len(seeds) > maxSeedsPerJob {
		return nil, fmt.Errorf("seeds: %d exceeds the per-job maximum %d", len(seeds), maxSeedsPerJob)
	}
	seen := make(map[int64]bool, len(seeds))
	for _, s := range seeds {
		if seen[s] {
			return nil, fmt.Errorf("seeds: duplicate seed %d", s)
		}
		seen[s] = true
	}
	return seeds, nil
}

// seedProgress is one seed's live slot counter, advanced lock-free from
// the replication's SlotHook and read by status handlers.
type seedProgress struct {
	seed      int64
	slotsDone atomic.Int64
}

// Job is one submitted experiment. Fields other than the progress atomics
// and the record log (which has its own lock) are guarded by the server
// mutex.
type Job struct {
	ID    string
	Req   JobRequest
	Seeds []int64

	state     JobState
	errMsg    string
	recovered bool

	createdAt  time.Time
	startedAt  time.Time
	finishedAt time.Time

	totalSlots int
	progress   []*seedProgress
	byTheSeed  map[int64]*seedProgress

	// log is the live metrics stream of the job's first seed; nil only
	// for jobs recovered in a terminal state (streams are not journaled).
	log *recordLog

	result *JobResult

	// cancel aborts the running replications; cancelReason distinguishes
	// a user DELETE ("user") from a drain interruption ("drain") so only
	// the former journals a terminal event.
	cancel       func()
	cancelReason string
	// done is closed when the run loop has fully released the job.
	done chan struct{}
}

// newJob builds a queued job with live progress slots. totalSlots is the
// per-seed horizon from the materialized spec.
func newJob(id string, req JobRequest, seeds []int64, totalSlots int) *Job {
	j := &Job{
		ID:         id,
		Req:        req,
		Seeds:      seeds,
		state:      JobQueued,
		createdAt:  now(),
		totalSlots: totalSlots,
		log:        newRecordLog(),
		byTheSeed:  make(map[int64]*seedProgress, len(seeds)),
		done:       make(chan struct{}),
	}
	for _, s := range seeds {
		p := &seedProgress{seed: s}
		j.progress = append(j.progress, p)
		j.byTheSeed[s] = p
	}
	return j
}

// JobResult aggregates a finished (or partially finished) job, reusing the
// sweep checkpoint unit: one sim.SeedMetrics per completed seed plus the
// failed-seed list and the cross-seed summary.
type JobResult struct {
	Seeds       []sim.SeedMetrics     `json:"seeds"`
	FailedSeeds []int64               `json:"failed_seeds,omitempty"`
	Errors      []string              `json:"errors,omitempty"`
	Summary     *sim.ReplicatedResult `json:"summary,omitempty"`
}

// SeedStatus is one seed's live progress in a job status.
type SeedStatus struct {
	Seed      int64  `json:"seed"`
	SlotsDone int64  `json:"slots_done"`
	State     string `json:"state"`
	Error     string `json:"error,omitempty"`
}

// JobStatus is the API rendering of a job.
type JobStatus struct {
	ID         string           `json:"id"`
	State      JobState         `json:"state"`
	Error      string           `json:"error,omitempty"`
	Recovered  bool             `json:"recovered,omitempty"`
	Spec       sim.ScenarioSpec `json:"spec"`
	Seeds      []int64          `json:"seeds"`
	DeadlineMS int64            `json:"deadline_ms,omitempty"`
	CreatedAt  string           `json:"created_at,omitempty"`
	StartedAt  string           `json:"started_at,omitempty"`
	FinishedAt string           `json:"finished_at,omitempty"`
	TotalSlots int              `json:"total_slots"`
	Progress   []SeedStatus     `json:"progress,omitempty"`
	Result     *JobResult       `json:"result,omitempty"`
}

// status renders the job; the caller holds the server mutex.
func (j *Job) status() JobStatus {
	st := JobStatus{
		ID:         j.ID,
		State:      j.state,
		Error:      j.errMsg,
		Recovered:  j.recovered,
		Spec:       j.Req.Spec,
		Seeds:      j.Seeds,
		DeadlineMS: j.Req.DeadlineMS,
		TotalSlots: j.totalSlots,
		Result:     j.result,
	}
	if !j.createdAt.IsZero() {
		st.CreatedAt = j.createdAt.UTC().Format(time.RFC3339Nano)
	}
	if !j.startedAt.IsZero() {
		st.StartedAt = j.startedAt.UTC().Format(time.RFC3339Nano)
	}
	if !j.finishedAt.IsZero() {
		st.FinishedAt = j.finishedAt.UTC().Format(time.RFC3339Nano)
	}
	failed := make(map[int64]string)
	if j.result != nil {
		for i, s := range j.result.FailedSeeds {
			msg := "failed"
			if i < len(j.result.Errors) {
				msg = j.result.Errors[i]
			}
			failed[s] = msg
		}
	}
	for _, p := range j.progress {
		ss := SeedStatus{Seed: p.seed, SlotsDone: p.slotsDone.Load()}
		if msg, ok := failed[p.seed]; ok {
			ss.State, ss.Error = "failed", msg
		} else if j.result != nil || int(ss.SlotsDone) >= j.totalSlots {
			ss.State = "done"
		} else if j.state.Terminal() {
			// Recovered terminal job: no per-seed record survived the
			// restart, so the seed inherits the job's state.
			ss.State = string(j.state)
		} else if ss.SlotsDone > 0 {
			ss.State = "running"
		} else {
			ss.State = "pending"
		}
		st.Progress = append(st.Progress, ss)
	}
	return st
}
