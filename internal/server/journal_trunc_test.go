package server

// Daemon-side journal replay robustness (the coordinator twin lives in
// internal/cluster/journal_test.go): a journal cut at EVERY byte offset
// must replay without panicking and re-queue exactly the jobs whose last
// complete lifecycle event is non-terminal. Plus the /readyz–/healthz
// split and the queue-full Retry-After backpressure hint.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"greencell/internal/sim"
)

// TestDaemonJournalTruncationEveryByte sweeps every crash-mid-append
// outcome of a journal holding one job per lifecycle state.
func TestDaemonJournalTruncationEveryByte(t *testing.T) {
	req := JobRequest{Spec: sim.ScenarioSpec{Slots: 2, Seed: 3}}
	var full bytes.Buffer
	for _, e := range []journalEntry{
		{Event: "submitted", ID: "job-000001", Req: &req},
		{Event: "started", ID: "job-000001"},
		{Event: "done", ID: "job-000001"},
		{Event: "submitted", ID: "job-000002", Req: &req},
		{Event: "started", ID: "job-000002"},
		{Event: "submitted", ID: "job-000003", Req: &req},
		{Event: "started", ID: "job-000003"},
		{Event: "cancelled", ID: "job-000003"},
		{Event: "submitted", ID: "job-000004", Req: &req},
		{Event: "started", ID: "job-000004"},
		{Event: "failed", ID: "job-000004", Error: "boom"},
	} {
		b, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		full.Write(append(b, '\n'))
	}

	data := full.Bytes()
	path := filepath.Join(t.TempDir(), "trunc.jsonl")
	for cut := 0; cut <= len(data); cut++ {
		prefix := data[:cut]
		if err := os.WriteFile(path, prefix, 0o644); err != nil {
			t.Fatalf("cut %d: write: %v", cut, err)
		}

		// Fold the complete lines of the prefix the way recovery does.
		last := map[string]string{}
		for _, line := range strings.Split(string(prefix), "\n") {
			var e journalEntry
			if json.Unmarshal([]byte(line), &e) != nil {
				continue
			}
			last[e.ID] = e.Event
		}

		s, err := New(Config{JournalPath: path})
		if err != nil {
			t.Fatalf("cut %d: New: %v", cut, err)
		}
		for id, ev := range last {
			st, err := s.Job(id)
			if err != nil {
				t.Fatalf("cut %d: job %s lost in replay: %v", cut, id, err)
			}
			switch ev {
			case "submitted", "started":
				if !st.Recovered {
					t.Fatalf("cut %d: job %s not flagged recovered", cut, id)
				}
				// Re-queued, running, or already re-done (the 2-slot job can
				// finish between New and this check) — never a replayed
				// failure or cancellation.
				if st.State == JobFailed || st.State == JobCancelled {
					t.Fatalf("cut %d: recoverable job %s replayed terminal %s", cut, id, st.State)
				}
			default:
				if string(st.State) != ev {
					t.Fatalf("cut %d: job %s replayed as %s, want %s", cut, id, st.State, ev)
				}
			}
		}
		if err := s.Close(); err != nil {
			t.Fatalf("cut %d: Close: %v", cut, err)
		}
	}
}

// TestReadyzHealthzSplit: liveness stays 200 across a drain while
// readiness flips to 503 — the signal load balancers and the cluster
// coordinator's heartbeat key on.
func TestReadyzHealthzSplit(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatalf("closing %s: %v", path, err)
		}
		return resp
	}
	if resp := get("/readyz"); resp.StatusCode != 200 {
		t.Fatalf("readyz before drain: %d", resp.StatusCode)
	}
	if resp := get("/healthz"); resp.StatusCode != 200 {
		t.Fatalf("healthz before drain: %d", resp.StatusCode)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if resp := get("/readyz"); resp.StatusCode != 503 {
		t.Fatalf("readyz after drain: %d, want 503", resp.StatusCode)
	}
	if resp := get("/healthz"); resp.StatusCode != 200 {
		t.Fatalf("healthz after drain: %d, want 200 (liveness is not readiness)", resp.StatusCode)
	}
}

// TestQueueFullRetryAfter: a 503 for a full queue carries the Retry-After
// hint the shared retry helper stretches its backoff to.
func TestQueueFullRetryAfter(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	defer func() {
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the single worker, then fill the one queue slot.
	st1, err := s.Submit(JobRequest{Spec: slowSpec(1)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, s, st1.ID, func(st JobStatus) bool { return st.State == JobRunning }, "running")
	if _, err := s.Submit(JobRequest{Spec: tinySpec(2)}); err != nil {
		t.Fatalf("Submit (queued): %v", err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"spec":{"slots":8,"seed":3}}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatalf("closing body: %v", err)
	}
	if resp.StatusCode != 503 || resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("queue-full: status %d Retry-After %q, want 503 / 1",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}
