package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync"

	"greencell/internal/metrics"
)

// recordLog is the in-memory, append-only metrics stream of one job: a
// metrics.RecordWriter that keeps every record as its encoded JSON line so
// HTTP consumers can replay and follow the stream live. Lines are encoded
// exactly as metrics.JSONLWriter would emit them (json.Marshal plus a
// newline — the same bytes as json.Encoder.Encode), so a streamed job is
// byte-identical to a local `sim.Run` with an attached Recorder; the
// serve-smoke gate diffs the two against the golden fixture.
//
// Writers (the job's Recorder, single-goroutine) and any number of stream
// readers synchronize on mu; readers park on the wake channel, which is
// closed and replaced on every append.
type recordLog struct {
	mu     sync.Mutex
	wake   chan struct{}
	lines  []streamLine
	closed bool
}

// streamLine is one encoded record. slot is the slot number for slot
// records and negative for the header (-1) and summary (-2), which are
// always streamed regardless of any from_slot resume point.
type streamLine struct {
	slot int
	data []byte
}

func newRecordLog() *recordLog {
	return &recordLog{wake: make(chan struct{})}
}

// errLogClosed reports a write after Close — a Recorder misuse.
var errLogClosed = errors.New("server: record log closed")

func (l *recordLog) append(slot int, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errLogClosed
	}
	l.lines = append(l.lines, streamLine{slot: slot, data: append(data, '\n')})
	close(l.wake)
	l.wake = make(chan struct{})
	return nil
}

// WriteHeader implements metrics.RecordWriter.
func (l *recordLog) WriteHeader(h metrics.Header) error {
	return l.append(-1, metrics.NewHeader(h))
}

// WriteSlot implements metrics.RecordWriter.
func (l *recordLog) WriteSlot(r *metrics.SlotRecord) error {
	r.Type = "slot"
	return l.append(r.Slot, r)
}

// WriteSummary implements metrics.RecordWriter.
func (l *recordLog) WriteSummary(s metrics.Summary) error {
	s.Type = "summary"
	return l.append(-2, s)
}

// Close implements metrics.RecordWriter: it ends the stream, releasing
// every follower once it has replayed the remaining lines. Closing twice
// is harmless (the job teardown path and the Recorder both close).
func (l *recordLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.closed {
		l.closed = true
		close(l.wake)
	}
	return nil
}

// stream replays the log into w from its beginning — skipping slot records
// below fromSlot — and then follows live appends until the log closes, the
// context is cancelled, or a write fails. Each batch is flushed so HTTP
// consumers see slots as they are simulated.
func (l *recordLog) stream(ctx context.Context, w io.Writer, fromSlot int) error {
	flusher, _ := w.(http.Flusher)
	next := 0
	for {
		l.mu.Lock()
		batch := l.lines[next:]
		next = len(l.lines)
		closed := l.closed
		wake := l.wake
		l.mu.Unlock()

		wrote := false
		for _, line := range batch {
			if line.slot >= 0 && line.slot < fromSlot {
				continue
			}
			if _, err := w.Write(line.data); err != nil {
				return err
			}
			wrote = true
		}
		if wrote && flusher != nil {
			flusher.Flush()
		}
		if closed {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-wake:
		}
	}
}
