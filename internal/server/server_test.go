package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"greencell/internal/metrics"
	"greencell/internal/sim"
)

// tinySpec is the fast test scenario: the paper preset cut to 8 slots.
func tinySpec(seed int64) sim.ScenarioSpec {
	return sim.ScenarioSpec{Slots: 8, Seed: seed}
}

// slowSpec runs long enough (~10s if uninterrupted) that tests can
// reliably observe and interrupt it mid-run.
func slowSpec(seed int64) sim.ScenarioSpec {
	return sim.ScenarioSpec{Slots: 2000, Seed: seed}
}

// newTestServer builds a journalled server in a temp dir.
func newTestServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.JournalPath == "" {
		cfg.JournalPath = filepath.Join(t.TempDir(), "journal.jsonl")
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s, cfg.JournalPath
}

// waitState polls a job until pred holds (or the deadline passes).
func waitState(t *testing.T, s *Server, id string, pred func(JobStatus) bool, what string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := s.Job(id)
		if err != nil {
			t.Fatalf("Job(%s): %v", id, err)
		}
		if pred(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %s; last status: %+v", id, what, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// checkGoroutines fails the test if the goroutine count stays above base
// (plus slack for runtime helpers) once everything should have exited.
func checkGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d running, started with %d\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// referenceStream runs the spec's first seed locally with an attached
// Recorder — the exact greencellsim -metrics path — and returns the JSONL.
func referenceStream(t *testing.T, spec sim.ScenarioSpec, seed int64) []byte {
	t.Helper()
	sc, err := spec.Scenario()
	if err != nil {
		t.Fatalf("Scenario: %v", err)
	}
	sc.Seed = seed
	var buf bytes.Buffer
	rec := sim.NewRecorder(metrics.NewJSONLWriter(&buf), sim.HeaderFor(sc, spec.Label()))
	rec.Attach(&sc, false)
	if _, err := sim.Run(sc); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("Recorder.Close: %v", err)
	}
	return buf.Bytes()
}

// TestJobRunsToDoneWithByteIdenticalStream is the determinism contract:
// a submitted job completes, reports per-seed results, and its streamed
// metrics canonicalize to the same bytes as a local instrumented run.
func TestJobRunsToDoneWithByteIdenticalStream(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	defer func() {
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()

	st, err := s.Submit(JobRequest{Spec: tinySpec(5), Replications: 2})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.State != JobQueued && st.State != JobRunning {
		t.Fatalf("fresh job state = %s", st.State)
	}
	if len(st.Seeds) != 2 || st.Seeds[0] != 5 || st.Seeds[1] != 6 {
		t.Fatalf("seeds = %v, want [5 6]", st.Seeds)
	}

	st = waitState(t, s, st.ID, func(st JobStatus) bool { return st.State.Terminal() }, "terminal")
	if st.State != JobDone {
		t.Fatalf("job ended %s (%s), want done", st.State, st.Error)
	}
	if st.Result == nil || len(st.Result.Seeds) != 2 || st.Result.Summary == nil {
		t.Fatalf("result incomplete: %+v", st.Result)
	}
	if st.Result.Summary.AvgEnergyCost.N != 2 {
		t.Fatalf("summary over %d seeds, want 2", st.Result.Summary.AvgEnergyCost.N)
	}
	for _, p := range st.Progress {
		if p.State != "done" || p.SlotsDone != 8 {
			t.Fatalf("seed progress %+v, want done with 8 slots", p)
		}
	}

	// The streamed metrics must canonicalize byte-identically to the
	// local run of the same (spec, seed).
	var got bytes.Buffer
	if err := s.Stream(context.Background(), st.ID, &got, 0); err != nil {
		t.Fatalf("Stream: %v", err)
	}
	cGot, err := metrics.CanonicalizeJSONL(got.Bytes())
	if err != nil {
		t.Fatalf("canonicalize streamed: %v", err)
	}
	cWant, err := metrics.CanonicalizeJSONL(referenceStream(t, tinySpec(5), 5))
	if err != nil {
		t.Fatalf("canonicalize reference: %v", err)
	}
	if !bytes.Equal(cGot, cWant) {
		t.Fatalf("streamed metrics differ from the local run:\n got %d bytes\nwant %d bytes", len(cGot), len(cWant))
	}

	// from_slot resumes mid-stream: header and summary always included,
	// slot records only from the given slot.
	var resumed bytes.Buffer
	if err := s.Stream(context.Background(), st.ID, &resumed, 6); err != nil {
		t.Fatalf("Stream(from_slot=6): %v", err)
	}
	lines := strings.Split(strings.TrimSpace(resumed.String()), "\n")
	// header + slots 6,7 + summary
	if len(lines) != 4 {
		t.Fatalf("resumed stream has %d lines, want 4:\n%s", len(lines), resumed.String())
	}

	// A second replay is identical to the first: the log is append-only.
	var again bytes.Buffer
	if err := s.Stream(context.Background(), st.ID, &again, 0); err != nil {
		t.Fatalf("Stream replay: %v", err)
	}
	if !bytes.Equal(got.Bytes(), again.Bytes()) {
		t.Fatal("replaying the stream produced different bytes")
	}
}

// TestCancelStopsRunningJob: DELETE on a running job observably interrupts
// the replications mid-run, reports the interrupted seeds, and leaks no
// goroutines.
func TestCancelStopsRunningJob(t *testing.T) {
	base := runtime.NumGoroutine()
	s, journalPath := newTestServer(t, Config{})

	st, err := s.Submit(JobRequest{Spec: slowSpec(1), Replications: 2})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, s, st.ID, func(st JobStatus) bool {
		if st.State != JobRunning {
			return false
		}
		for _, p := range st.Progress {
			if p.SlotsDone > 0 {
				return true
			}
		}
		return false
	}, "running with progress")

	start := time.Now()
	st, err = s.Cancel(st.ID)
	if err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if st.State != JobCancelled {
		t.Fatalf("after cancel, state = %s", st.State)
	}
	if took := time.Since(start); took > 10*time.Second {
		t.Fatalf("cancellation took %v; the run was not interrupted", took)
	}
	if st.Result == nil || len(st.Result.FailedSeeds) == 0 {
		t.Fatalf("cancelled job must report interrupted seeds; result = %+v", st.Result)
	}
	for _, p := range st.Progress {
		if p.SlotsDone >= 2000 {
			t.Fatalf("seed %d ran to completion despite cancel", p.Seed)
		}
	}

	// The terminal event is journaled (a user cancel is final, not
	// recoverable).
	data, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatalf("reading journal: %v", err)
	}
	if !strings.Contains(string(data), `"event":"cancelled"`) {
		t.Fatalf("journal lacks the cancelled event:\n%s", data)
	}

	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	checkGoroutines(t, base)
}

// TestDrainLeavesRunningJobRecoverable: a drain interrupts the job without
// journaling a terminal event, so the journal's last word is "started" and
// a new instance re-queues it.
func TestDrainLeavesRunningJobRecoverable(t *testing.T) {
	base := runtime.NumGoroutine()
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "journal.jsonl")
	s, _ := newTestServer(t, Config{JournalPath: journalPath})

	st, err := s.Submit(JobRequest{Spec: slowSpec(1)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, s, st.ID, func(st JobStatus) bool { return st.State == JobRunning }, "running")

	// Zero-grace drain: interrupt immediately.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	checkGoroutines(t, base)

	// Submissions after a drain are refused.
	if _, err := s.Submit(JobRequest{Spec: tinySpec(1)}); err == nil {
		t.Fatal("Submit after drain succeeded")
	}

	entries, err := loadJournal(journalPath)
	if err != nil {
		t.Fatalf("loadJournal: %v", err)
	}
	last := ""
	for _, e := range entries {
		if e.ID == st.ID {
			last = e.Event
		}
	}
	if last != "started" {
		t.Fatalf("journal's last event for %s is %q, want started (recoverable)", st.ID, last)
	}

	// A fresh instance recovers and re-runs the job. Shrink it first so
	// the re-run completes quickly: recovery replays the journaled spec,
	// so rewrite the journal with a tiny request but the same lifecycle.
	small := JobRequest{Spec: tinySpec(1)}
	rewritten := []journalEntry{
		{Event: "submitted", ID: st.ID, Req: &small},
		{Event: "started", ID: st.ID},
	}
	var buf bytes.Buffer
	for _, e := range rewritten {
		b, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		buf.Write(append(b, '\n'))
	}
	if err := os.WriteFile(journalPath, buf.Bytes(), 0o644); err != nil {
		t.Fatalf("rewriting journal: %v", err)
	}

	s2, _ := newTestServer(t, Config{JournalPath: journalPath})
	defer func() {
		if err := s2.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	st2, err := s2.Job(st.ID)
	if err != nil {
		t.Fatalf("recovered job missing: %v", err)
	}
	if !st2.Recovered {
		t.Fatal("recovered job not flagged as recovered")
	}
	st2 = waitState(t, s2, st.ID, func(st JobStatus) bool { return st.State.Terminal() }, "terminal")
	if st2.State != JobDone {
		t.Fatalf("recovered job ended %s (%s), want done", st2.State, st2.Error)
	}
}

// TestJournalRecovery: terminal journal entries become read-only history
// (410 on their stream), non-terminal ones re-run, and job IDs continue
// past the journal's maximum.
func TestJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "journal.jsonl")
	req := JobRequest{Spec: tinySpec(3)}
	var buf bytes.Buffer
	for _, e := range []journalEntry{
		{Event: "submitted", ID: "job-000001", Req: &req},
		{Event: "started", ID: "job-000001"},
		{Event: "done", ID: "job-000001"},
		{Event: "submitted", ID: "job-000002", Req: &req},
	} {
		b, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		buf.Write(append(b, '\n'))
	}
	// A torn final line (crash mid-append) must be tolerated.
	buf.WriteString(`{"event":"sub`)
	if err := os.WriteFile(journalPath, buf.Bytes(), 0o644); err != nil {
		t.Fatalf("writing journal: %v", err)
	}

	s, _ := newTestServer(t, Config{JournalPath: journalPath})
	defer func() {
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()

	// job-000001 is history: done, stream gone.
	st1, err := s.Job("job-000001")
	if err != nil {
		t.Fatalf("historical job missing: %v", err)
	}
	if st1.State != JobDone || !st1.Recovered {
		t.Fatalf("historical job: %+v", st1)
	}
	var sink bytes.Buffer
	err = s.Stream(context.Background(), "job-000001", &sink, 0)
	var ae *apiError
	if err == nil || !asAPIError(err, &ae) || ae.code != 410 {
		t.Fatalf("streaming a pre-restart job: err = %v, want 410", err)
	}

	// job-000002 re-runs to done.
	st2 := waitState(t, s, "job-000002", func(st JobStatus) bool { return st.State.Terminal() }, "terminal")
	if st2.State != JobDone || !st2.Recovered {
		t.Fatalf("recovered job: state %s recovered %v", st2.State, st2.Recovered)
	}

	// New IDs continue after the journal's maximum.
	st3, err := s.Submit(JobRequest{Spec: tinySpec(1)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st3.ID != "job-000003" {
		t.Fatalf("next ID = %s, want job-000003", st3.ID)
	}
}

// asAPIError is errors.As without importing errors in every call site.
func asAPIError(err error, target **apiError) bool {
	for err != nil {
		if ae, ok := err.(*apiError); ok {
			*target = ae
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestHTTPAPI exercises the full wire surface against a live handler.
func TestHTTPAPI(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	defer func() {
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Invalid spec: 400 naming the offending field.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"spec":{"preset":"nope"}}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != 400 || !strings.Contains(body, "preset") {
		t.Fatalf("invalid spec: status %d body %s", resp.StatusCode, body)
	}

	// Unknown request field: 400 naming it.
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"sped":{}}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	body = readAll(t, resp)
	if resp.StatusCode != 400 || !strings.Contains(body, "sped") {
		t.Fatalf("unknown field: status %d body %s", resp.StatusCode, body)
	}

	// Unknown job: 404.
	resp, err = http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	if readAll(t, resp); resp.StatusCode != 404 {
		t.Fatalf("unknown job: status %d", resp.StatusCode)
	}

	// Valid submission: 202 with a Location header.
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"spec":{"slots":8,"seed":5}}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	loc := resp.Header.Get("Location")
	var st JobStatus
	if err := json.Unmarshal([]byte(readAll(t, resp)), &st); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	if resp.StatusCode != 202 || loc != "/v1/jobs/"+st.ID {
		t.Fatalf("submit: status %d location %q id %s", resp.StatusCode, loc, st.ID)
	}

	// Poll over HTTP to done.
	deadline := time.Now().Add(30 * time.Second)
	for !st.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
		resp, err = http.Get(ts.URL + loc)
		if err != nil {
			t.Fatalf("GET %s: %v", loc, err)
		}
		if err := json.Unmarshal([]byte(readAll(t, resp)), &st); err != nil {
			t.Fatalf("decoding status: %v", err)
		}
	}
	if st.State != JobDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}

	// The metrics stream arrives as NDJSON: header first, summary last.
	resp, err = http.Get(ts.URL + loc + "/metrics")
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	stream := readAll(t, resp)
	lines := strings.Split(strings.TrimSpace(stream), "\n")
	if len(lines) != 10 { // header + 8 slots + summary
		t.Fatalf("stream has %d lines, want 10:\n%s", len(lines), stream)
	}
	if !strings.Contains(lines[0], `"type":"header"`) || !strings.Contains(lines[9], `"type":"summary"`) {
		t.Fatalf("stream not framed by header/summary:\n%s", stream)
	}

	// GET /v1/jobs lists it.
	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatalf("GET /v1/jobs: %v", err)
	}
	if body := readAll(t, resp); !strings.Contains(body, st.ID) {
		t.Fatalf("job list lacks %s: %s", st.ID, body)
	}

	// Health and Prometheus metrics.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	if body := readAll(t, resp); resp.StatusCode != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	prom := readAll(t, resp)
	for _, needle := range []string{
		"greencelld_jobs_submitted_total 1",
		"greencelld_jobs_done_total 1",
		"sim_slots_total 8",
		"# TYPE greencelld_jobs_running gauge",
	} {
		if !strings.Contains(prom, needle) {
			t.Fatalf("prometheus exposition lacks %q:\n%s", needle, prom)
		}
	}
}

// TestStreamFollowsLive: a client connected before the job finishes sees
// records arrive incrementally and the stream terminate at the summary.
func TestStreamFollowsLive(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	defer func() {
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st, err := s.Submit(JobRequest{Spec: sim.ScenarioSpec{Slots: 40, Seed: 2}})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	// Connect immediately — most of the stream has not happened yet.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/metrics")
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	if n != 42 { // header + 40 slots + summary
		t.Fatalf("live stream delivered %d lines, want 42", n)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response body: %v", err)
	}
	return string(data)
}
