// Package server is the experiment daemon behind cmd/greencelld: an HTTP/
// JSON job orchestrator over the crash-proof replication machinery of
// internal/sim. A job is a serializable scenario spec plus a seed list; the
// server runs jobs from a bounded queue on a worker pool, streams each
// job's metrics live (the docs/METRICS.md schema, byte-identical to a local
// run), journals job lifecycles to a JSONL file so a restarted daemon
// recovers interrupted work, and drains gracefully on SIGTERM.
//
// Determinism is the core contract: a job's result is a pure function of
// (spec, seeds). The serve-smoke gate exercises it end to end by diffing a
// streamed job against the golden fixture produced by sim.Run directly.
// See docs/SERVER.md for the API reference and lifecycle details.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"greencell/internal/core"
	"greencell/internal/metrics"
	"greencell/internal/sim"
)

// Config parameterizes a Server.
type Config struct {
	// JournalPath is the JSONL job journal; empty disables journalling
	// (jobs then do not survive a restart).
	JournalPath string
	// Workers is the number of jobs run concurrently (each job additionally
	// parallelizes across its seeds, so 1 — the default — already saturates
	// the machine for multi-seed jobs).
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs; submits
	// beyond it are rejected with 503. Default 256. Recovery ignores the
	// bound: every recoverable journaled job is re-queued.
	QueueDepth int
}

// Server owns the job table, the worker pool, and the journal. Create with
// New, serve its Handler, and stop with Drain (graceful) or Close.
type Server struct {
	cfg Config

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for GET /v1/jobs
	nextID int

	journal  *journal
	queue    chan *Job
	draining bool

	// reg holds the serving-level metrics: job lifecycle counters plus the
	// sim_-prefixed aggregation of every streamed run's counters. Guarded
	// by mu (the registry itself is not concurrency-safe).
	reg            *metrics.Registry
	cSubmitted     *metrics.Counter
	cDone          *metrics.Counter
	cFailed        *metrics.Counter
	cCancelled     *metrics.Counter
	cRecovered     *metrics.Counter
	cSeedsComplete *metrics.Counter
	cSeedsFailed   *metrics.Counter
	gQueued        *metrics.Gauge
	gRunning       *metrics.Gauge

	// runCtx cancels every job when the server closes hard.
	runCtx    context.Context
	runCancel context.CancelFunc
	wg        sync.WaitGroup
}

// New builds a server, replays the journal (re-queueing every job whose
// last event was non-terminal), and starts the worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		jobs:      make(map[string]*Job),
		reg:       metrics.NewRegistry(),
		runCtx:    ctx,
		runCancel: cancel,
	}
	s.cSubmitted = s.reg.Counter("greencelld_jobs_submitted_total", "jobs", "jobs accepted over the API or recovered from the journal")
	s.cDone = s.reg.Counter("greencelld_jobs_done_total", "jobs", "jobs finished with every seed successful")
	s.cFailed = s.reg.Counter("greencelld_jobs_failed_total", "jobs", "jobs finished with at least one failed seed")
	s.cCancelled = s.reg.Counter("greencelld_jobs_cancelled_total", "jobs", "jobs cancelled by DELETE")
	s.cRecovered = s.reg.Counter("greencelld_jobs_recovered_total", "jobs", "interrupted jobs re-queued at startup from the journal")
	s.cSeedsComplete = s.reg.Counter("greencelld_seeds_completed_total", "seeds", "seed replications finished successfully")
	s.cSeedsFailed = s.reg.Counter("greencelld_seeds_failed_total", "seeds", "seed replications that failed or were interrupted")
	s.gQueued = s.reg.Gauge("greencelld_jobs_queued", "jobs", "jobs waiting for a worker")
	s.gRunning = s.reg.Gauge("greencelld_jobs_running", "jobs", "jobs currently executing")

	var recovered []*Job
	if cfg.JournalPath != "" {
		var err error
		recovered, err = s.recover(cfg.JournalPath)
		if err != nil {
			cancel()
			return nil, err
		}
		j, err := openJournal(cfg.JournalPath)
		if err != nil {
			cancel()
			return nil, err
		}
		s.journal = j
	}

	// Size the queue so recovery can never block on its own channel.
	depth := cfg.QueueDepth
	if len(recovered) > depth {
		depth = len(recovered)
	}
	s.queue = make(chan *Job, depth)
	for _, j := range recovered {
		s.queue <- j
	}

	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// recover replays the journal into the job table: terminal jobs become
// read-only history (their streams and results were not journaled), and
// jobs whose last event is "submitted" or "started" are returned for
// re-queueing — determinism makes the re-run equivalent to the interrupted
// one.
func (s *Server) recover(path string) ([]*Job, error) {
	entries, err := loadJournal(path)
	if err != nil {
		return nil, err
	}
	type folded struct {
		req  *JobRequest
		last string
	}
	byID := make(map[string]*folded)
	var ids []string
	for _, e := range entries {
		f := byID[e.ID]
		if f == nil {
			f = &folded{}
			byID[e.ID] = f
			ids = append(ids, e.ID)
		}
		if e.Req != nil {
			f.req = e.Req
		}
		f.last = e.Event
		if n := jobIDNum(e.ID); n > s.nextID {
			s.nextID = n
		}
	}
	sort.Slice(ids, func(i, j int) bool { return jobIDNum(ids[i]) < jobIDNum(ids[j]) })

	var requeue []*Job
	for _, id := range ids {
		f := byID[id]
		if f.req == nil {
			fmt.Fprintf(os.Stderr, "greencelld: journal: job %s has no submitted event; skipping\n", id)
			continue
		}
		seeds, err := f.req.Normalize()
		if err != nil {
			fmt.Fprintf(os.Stderr, "greencelld: journal: job %s no longer validates (%v); skipping\n", id, err)
			continue
		}
		sc, err := f.req.Spec.Scenario()
		if err != nil {
			fmt.Fprintf(os.Stderr, "greencelld: journal: job %s spec no longer materializes (%v); skipping\n", id, err)
			continue
		}
		j := newJob(id, *f.req, seeds, sc.Slots)
		j.recovered = true
		switch f.last {
		case "submitted", "started":
			s.jobs[id] = j
			s.order = append(s.order, id)
			s.cSubmitted.Inc()
			s.cRecovered.Inc()
			s.gQueued.Set(s.gQueued.Value() + 1)
			requeue = append(requeue, j)
		case "done", "failed", "cancelled":
			// Historical: keep it listable, but its stream is gone.
			j.state = JobState(f.last)
			if err := j.log.Close(); err != nil {
				return nil, err // unreachable: a fresh log always closes
			}
			j.log = nil
			close(j.done)
			s.jobs[id] = j
			s.order = append(s.order, id)
		default:
			fmt.Fprintf(os.Stderr, "greencelld: journal: job %s has unknown event %q; skipping\n", id, f.last)
		}
	}
	return requeue, nil
}

// Submit validates, journals, and enqueues a job, returning its status.
func (s *Server) Submit(req JobRequest) (JobStatus, error) {
	seeds, err := req.Normalize()
	if err != nil {
		return JobStatus{}, &apiError{code: 400, msg: err.Error()}
	}
	sc, err := req.Spec.Scenario()
	if err != nil {
		return JobStatus{}, &apiError{code: 400, msg: err.Error()}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return JobStatus{}, &apiError{code: 503, msg: "server is draining; not accepting jobs"}
	}
	if len(s.queue) == cap(s.queue) {
		// Retry-After: the queue drains at job granularity, so a short
		// client-side pause is the right unit; the submit clients honor it
		// inside their shared backoff helper.
		return JobStatus{}, &apiError{code: 503, msg: "job queue is full", retryAfter: 1}
	}
	s.nextID++
	id := jobID(s.nextID)
	j := newJob(id, req, seeds, sc.Slots)
	if err := s.journal.append(journalEntry{Event: "submitted", ID: id, Req: &req}); err != nil {
		return JobStatus{}, fmt.Errorf("journal: %w", err)
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.cSubmitted.Inc()
	s.gQueued.Set(s.gQueued.Value() + 1)
	//lint:allow locksafe -- cannot block: queue capacity was checked above under the same s.mu, and only this path sends
	s.queue <- j
	return j.status(), nil
}

// Job returns one job's status.
func (s *Server) Job(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, &apiError{code: 404, msg: fmt.Sprintf("no such job %q", id)}
	}
	return j.status(), nil
}

// Jobs returns every job's status in submission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status())
	}
	return out
}

// Cancel stops a queued or running job on behalf of a user DELETE. It is
// idempotent: cancelling a terminal job reports its (unchanged) status.
func (s *Server) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobStatus{}, &apiError{code: 404, msg: fmt.Sprintf("no such job %q", id)}
	}
	switch {
	case j.state.Terminal():
		st := j.status()
		s.mu.Unlock()
		return st, nil
	case j.state == JobQueued:
		// Still in the queue; mark it terminal here and let the worker
		// discard it on dequeue.
		j.state = JobCancelled
		j.cancelReason = cancelUser
		j.errMsg = "cancelled"
		j.finishedAt = now()
		err := s.journal.append(journalEntry{Event: "cancelled", ID: id})
		s.cCancelled.Inc()
		s.gQueued.Set(s.gQueued.Value() - 1)
		if j.log != nil {
			// The stream never started; close it so followers unblock.
			if cerr := j.log.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		close(j.done)
		st := j.status()
		s.mu.Unlock()
		if err != nil {
			return st, fmt.Errorf("journal: %w", err)
		}
		return st, nil
	default: // running
		j.cancelReason = cancelUser
		cancel, done := j.cancel, j.done
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		<-done // runJob finishes the bookkeeping
		return s.Job(id)
	}
}

// Stream copies the job's metrics stream (header, slot records from
// fromSlot on, summary) into w, following live output until the job ends
// or ctx is cancelled.
func (s *Server) Stream(ctx context.Context, id string, w io.Writer, fromSlot int) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	var log *recordLog
	if ok {
		log = j.log
	}
	s.mu.Unlock()
	if !ok {
		return &apiError{code: 404, msg: fmt.Sprintf("no such job %q", id)}
	}
	if log == nil {
		return &apiError{code: 410, msg: fmt.Sprintf("job %q predates this daemon instance; its stream was not journaled", id)}
	}
	return log.stream(ctx, w, fromSlot)
}

// cancel reasons: a user DELETE journals a terminal event; a drain does
// not, leaving the job recoverable by the next daemon instance.
const (
	cancelUser  = "user"
	cancelDrain = "drain"
)

// worker executes queued jobs until the queue closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.mu.Lock()
		if j.state != JobQueued || s.draining {
			// Cancelled while queued, or draining: leave it; a drained
			// queued job stays journaled as submitted and recovers later.
			s.mu.Unlock()
			continue
		}
		var jobCtx context.Context
		var cancel context.CancelFunc
		if j.Req.DeadlineMS > 0 {
			jobCtx, cancel = context.WithTimeout(s.runCtx, time.Duration(j.Req.DeadlineMS)*time.Millisecond)
		} else {
			jobCtx, cancel = context.WithCancel(s.runCtx)
		}
		j.state = JobRunning
		j.startedAt = now()
		j.cancel = cancel
		err := s.journal.append(journalEntry{Event: "started", ID: j.ID})
		s.gQueued.Set(s.gQueued.Value() - 1)
		s.gRunning.Set(s.gRunning.Value() + 1)
		s.mu.Unlock()
		if err != nil {
			fmt.Fprintf(os.Stderr, "greencelld: journal: %v\n", err)
		}

		s.runJob(jobCtx, j)
		cancel()
	}
}

// runJob executes every seed of one job, streams the first seed's metrics,
// aggregates the outcomes, and finalizes the job's state.
func (s *Server) runJob(ctx context.Context, j *Job) {
	sc, err := j.Req.Spec.Scenario()
	if err != nil {
		// Validated at submit; reaching here means the spec layer changed
		// under us. Fail the job rather than panic.
		s.finish(j, nil, nil, fmt.Errorf("materializing spec: %w", err))
		return
	}

	// The first seed is the streamed one: its run carries a Recorder whose
	// output is byte-identical to `greencellsim -metrics` on the same
	// scenario (the serve-smoke contract). Other seeds run bare, with only
	// the lock-free progress hook.
	streamSeed := j.Seeds[0]
	header := sc
	header.Seed = streamSeed
	rec := sim.NewRecorder(j.log, sim.HeaderFor(header, j.Req.Spec.Label()))
	prepare := func(seed int64, sc *sim.Scenario) {
		p := j.byTheSeed[seed]
		sc.SlotHook = func(sr *core.SlotResult) { p.slotsDone.Add(1) }
		if seed == streamSeed {
			rec.Attach(sc, false)
		}
	}

	outs := sim.RunSeedsPrepared(ctx, sc, j.Seeds, prepare)
	if err := rec.Close(); err != nil && !errors.Is(err, errLogClosed) {
		fmt.Fprintf(os.Stderr, "greencelld: job %s: recorder: %v\n", j.ID, err)
	}

	res := &JobResult{}
	for _, o := range outs {
		if o.Err != nil {
			res.FailedSeeds = append(res.FailedSeeds, o.Seed)
			res.Errors = append(res.Errors, o.Err.Error())
			continue
		}
		res.Seeds = append(res.Seeds, sim.MetricsOf(o.Seed, o.Result))
	}
	if len(res.Seeds) > 0 {
		res.Summary = sim.SummarizeSeedMetrics(res.Seeds)
	}

	var runErr error
	if len(res.FailedSeeds) > 0 {
		runErr = fmt.Errorf("%d of %d seeds failed: %s", len(res.FailedSeeds), len(j.Seeds), res.Errors[0])
		if ctx.Err() != nil {
			runErr = fmt.Errorf("%d of %d seeds interrupted: %v", len(res.FailedSeeds), len(j.Seeds), ctx.Err())
		}
	}
	s.finish(j, res, rec.Registry(), runErr)
}

// finish moves a job to its terminal state, journals it (unless the job
// was interrupted by a drain, which must stay recoverable), updates the
// server counters, folds the streamed run's counters into the serving
// registry, and releases cancel waiters.
func (s *Server) finish(j *Job, res *JobResult, streamReg *metrics.Registry, runErr error) {
	s.mu.Lock()
	j.result = res
	j.finishedAt = now()
	event := ""
	switch {
	case j.cancelReason == cancelDrain:
		// No terminal journal event: the last journaled event stays
		// "started", so the next daemon instance re-queues the job.
		j.state = JobCancelled
		j.errMsg = "interrupted by shutdown drain; will re-run on restart"
	case j.cancelReason == cancelUser:
		j.state = JobCancelled
		j.errMsg = "cancelled"
		event = "cancelled"
		s.cCancelled.Inc()
	case runErr != nil:
		j.state = JobFailed
		j.errMsg = runErr.Error()
		event = "failed"
		s.cFailed.Inc()
	default:
		j.state = JobDone
		event = "done"
		s.cDone.Inc()
	}
	if res != nil {
		s.cSeedsComplete.Add(float64(len(res.Seeds)))
		s.cSeedsFailed.Add(float64(len(res.FailedSeeds)))
	}
	if streamReg != nil {
		// Aggregate the streamed seed's run counters under a sim_ prefix
		// (histogram quantiles do not sum and stay in the stream summary).
		streamReg.EachCounter(func(name, unit, help string, v float64) {
			s.reg.Counter("sim_"+name, unit, help).Add(v)
		})
	}
	var jerr error
	if event != "" {
		jerr = s.journal.append(journalEntry{Event: event, ID: j.ID, Error: j.errMsg})
	}
	s.gRunning.Set(s.gRunning.Value() - 1)
	if j.log != nil {
		if cerr := j.log.Close(); cerr != nil && jerr == nil {
			jerr = cerr
		}
	}
	close(j.done)
	s.mu.Unlock()
	if jerr != nil {
		fmt.Fprintf(os.Stderr, "greencelld: journal: %v\n", jerr)
	}
}

// WriteMetrics renders the serving registry in Prometheus text format.
func (s *Server) WriteMetrics(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return metrics.WritePrometheus(w, s.reg)
}

// Drain gracefully stops the server: new submissions get 503, queued jobs
// stay journaled for the next instance, and running jobs get until ctx is
// done to finish before being interrupted (without a terminal journal
// event, so they also recover on restart). Drain waits for the workers to
// exit and closes the journal.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("server: already draining")
	}
	s.draining = true
	var running []*Job
	for _, id := range s.order {
		if j := s.jobs[id]; j.state == JobRunning {
			running = append(running, j)
		}
	}
	close(s.queue)
	s.mu.Unlock()

	// Grace period: let running jobs finish on their own.
	for _, j := range running {
		select {
		case <-j.done:
		case <-ctx.Done():
		}
	}

	// Interrupt whatever is left, marked as a drain so no terminal event
	// is journaled and the job recovers on restart.
	s.mu.Lock()
	var cancels []func()
	var waits []chan struct{}
	for _, j := range running {
		if !j.state.Terminal() {
			if j.cancelReason == "" {
				j.cancelReason = cancelDrain
			}
			if j.cancel != nil {
				cancels = append(cancels, j.cancel)
			}
			waits = append(waits, j.done)
		}
	}
	s.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	// Each job was just cancelled, so these waits are bounded by the jobs'
	// own unwinding; cutting them short on ctx expiry would return while
	// the drain bookkeeping is mid-write. The ctx bounds the grace period
	// above, not the teardown.
	//lint:allow ctxflow -- bounded post-cancel teardown; abandoning it would race the journal
	for _, d := range waits {
		<-d
	}

	s.wg.Wait()
	s.runCancel()

	// Unblock any followers of jobs that never ran (they stay journaled as
	// submitted and recover on the next start).
	s.mu.Lock()
	for _, id := range s.order {
		if j := s.jobs[id]; !j.state.Terminal() && j.log != nil {
			if err := j.log.Close(); err != nil {
				// recordLog.Close never fails; keep the compiler honest.
				fmt.Fprintf(os.Stderr, "greencelld: closing stream of %s: %v\n", id, err)
			}
		}
	}
	s.mu.Unlock()
	return s.journal.Close()
}

// Close stops the server immediately: Drain with no grace period.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return s.Drain(ctx)
}
