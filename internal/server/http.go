package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// apiError is an error with an HTTP status; handlers render it as the
// {"error": ...} body with that status. Non-apiError failures are 500s.
// retryAfter > 0 adds a Retry-After header (seconds) — the backpressure
// hint on 503 queue-full responses.
type apiError struct {
	code       int
	msg        string
	retryAfter int
}

func (e *apiError) Error() string { return e.msg }

// maxRequestBody bounds POST bodies; a job request is a small spec.
const maxRequestBody = 1 << 20

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/jobs              submit a job (JobRequest body) → 202 JobStatus
//	GET    /v1/jobs              list jobs in submission order
//	GET    /v1/jobs/{id}         one job's status, progress, and result
//	DELETE /v1/jobs/{id}         cancel a queued or running job
//	GET    /v1/jobs/{id}/metrics live NDJSON metrics stream (?from_slot=N)
//	GET    /healthz              liveness probe (always 200 while serving)
//	GET    /readyz               readiness probe (503 while draining)
//	GET    /metrics              Prometheus text exposition
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/metrics", s.handleStream)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// writeJSON renders v with a status code; encoding failures are logged by
// the http server via the returned write error path (nothing to recover).
func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if _, err := w.Write(append(data, '\n')); err != nil {
		return // client went away; nothing useful to do
	}
}

// writeErr renders err as the API error body.
func writeErr(w http.ResponseWriter, err error) {
	var ae *apiError
	if errors.As(err, &ae) {
		if ae.retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(ae.retryAfter))
		}
		writeJSON(w, ae.code, map[string]string{"error": ae.msg})
		return
	}
	writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody+1))
	if err != nil {
		writeErr(w, &apiError{code: 400, msg: fmt.Sprintf("reading body: %v", err)})
		return
	}
	if len(body) > maxRequestBody {
		writeErr(w, &apiError{code: 413, msg: "request body exceeds 1 MiB"})
		return
	}
	var req JobRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, &apiError{code: 400, msg: fmt.Sprintf("decoding job request: %v", err)})
		return
	}
	st, err := s.Submit(req)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	fromSlot := 0
	if v := r.URL.Query().Get("from_slot"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, &apiError{code: 400, msg: fmt.Sprintf("from_slot: want a non-negative integer, got %q", v)})
			return
		}
		fromSlot = n
	}
	// Headers must precede the first streamed byte; errors after that can
	// only end the stream early.
	s.mu.Lock()
	_, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeErr(w, &apiError{code: 404, msg: fmt.Sprintf("no such job %q", r.PathValue("id"))})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	if err := s.Stream(r.Context(), r.PathValue("id"), w, fromSlot); err != nil {
		var ae *apiError
		if errors.As(err, &ae) {
			// Nothing streamed yet for apiErrors (404/410 are pre-stream).
			writeErr(w, err)
		}
		return // mid-stream failures (client gone, ctx done) just end it
	}
}

// handleHealthz is pure liveness: 200 as long as the process serves, even
// mid-drain — restarting a deliberately draining daemon would defeat the
// drain. Readiness (take this instance out of rotation) is /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: 503 once draining (stop routing new work
// here). The pre-replay window is covered one level up — cmd/greencelld
// serves a bootstrap 503 /readyz until journal replay completes, so a
// probing coordinator never routes leases at a daemon still recovering.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.WriteMetrics(w); err != nil {
		return // client went away mid-write
	}
}
