package server_test

// The serve-smoke gate (make serve-smoke): an end-to-end exercise of the
// real binaries. It builds greencelld and greencellsim, starts the daemon,
// submits the golden scenario over HTTP with `greencellsim -submit`, and
// asserts the streamed metrics are byte-identical to the committed golden
// fixture (internal/sim/testdata/golden_metrics.jsonl) — proving a job's
// result is a pure function of (spec, seeds) across the process boundary.
// It then submits a long job, SIGTERMs the daemon mid-run, and checks the
// drain: clean exit, no terminal journal event, and a restarted daemon
// recovering the job.
//
// Gated behind GREENCELL_SERVE_SMOKE=1 because it builds binaries and
// forks processes — too heavy for the default `go test ./...` sweep.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"greencell/internal/metrics"
	"greencell/internal/server"
)

func TestServeSmoke(t *testing.T) {
	if os.Getenv("GREENCELL_SERVE_SMOKE") != "1" {
		t.Skip("set GREENCELL_SERVE_SMOKE=1 (or run `make serve-smoke`) to run the end-to-end smoke")
	}
	bin := t.TempDir()
	build := func(name, pkg string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, pkg)
		cmd.Dir = "../.." // module root
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, b)
		}
		return out
	}
	daemon := build("greencelld", "./cmd/greencelld")
	client := build("greencellsim", "./cmd/greencellsim")

	work := t.TempDir()
	journal := filepath.Join(work, "journal.jsonl")
	addrFile := filepath.Join(work, "addr")

	startDaemon := func() (*exec.Cmd, string) {
		t.Helper()
		if err := os.RemoveAll(addrFile); err != nil {
			t.Fatalf("clearing addr file: %v", err)
		}
		cmd := exec.Command(daemon,
			"-addr", "127.0.0.1:0",
			"-addr-file", addrFile,
			"-journal", journal,
			"-drain-grace", "200ms")
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting daemon: %v", err)
		}
		t.Cleanup(func() {
			if cmd.ProcessState == nil {
				if err := cmd.Process.Kill(); err == nil {
					if werr := cmd.Wait(); werr != nil {
						t.Logf("daemon wait after kill: %v", werr)
					}
				}
			}
		})
		deadline := time.Now().Add(10 * time.Second)
		for {
			data, err := os.ReadFile(addrFile)
			if err == nil && len(bytes.TrimSpace(data)) > 0 {
				return cmd, "http://" + strings.TrimSpace(string(data))
			}
			if time.Now().After(deadline) {
				t.Fatal("daemon never wrote its address file")
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	cmd, base := startDaemon()

	// Phase 1: submit the golden scenario through the real client and
	// diff the streamed metrics against the committed fixture.
	streamFile := filepath.Join(work, "stream.jsonl")
	sub := exec.Command(client,
		"-preset", "paper", "-slots", "12", "-seed", "1",
		"-submit", base, "-metrics", streamFile)
	if b, err := sub.CombinedOutput(); err != nil {
		t.Fatalf("greencellsim -submit: %v\n%s", err, b)
	}
	streamed, err := os.ReadFile(streamFile)
	if err != nil {
		t.Fatalf("reading streamed metrics: %v", err)
	}
	got, err := metrics.CanonicalizeJSONL(streamed)
	if err != nil {
		t.Fatalf("canonicalize: %v", err)
	}
	golden, err := os.ReadFile("../sim/testdata/golden_metrics.jsonl")
	if err != nil {
		t.Fatalf("reading golden fixture: %v", err)
	}
	if !bytes.Equal(got, golden) {
		t.Fatalf("streamed metrics differ from the golden fixture (%d vs %d bytes); the HTTP path broke determinism",
			len(got), len(golden))
	}

	// Phase 2: submit a long job, SIGTERM mid-run, verify the drain.
	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"spec":{"slots":2000,"seed":9}}`))
	if err != nil {
		t.Fatalf("POST long job: %v", err)
	}
	var st server.JobStatus
	decodeBody(t, resp, &st)
	longID := st.ID

	deadline := time.Now().Add(30 * time.Second)
	for st.State != server.JobRunning {
		if time.Now().After(deadline) {
			t.Fatalf("long job never started: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
		r, err := http.Get(base + "/v1/jobs/" + longID)
		if err != nil {
			t.Fatalf("GET long job: %v", err)
		}
		decodeBody(t, r, &st)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain within 15s of SIGTERM")
	}

	// The interrupted job must NOT have a terminal journal event.
	jdata, err := os.ReadFile(journal)
	if err != nil {
		t.Fatalf("reading journal: %v", err)
	}
	last := ""
	for _, line := range strings.Split(strings.TrimSpace(string(jdata)), "\n") {
		var e struct {
			Event string `json:"event"`
			ID    string `json:"id"`
		}
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("journal line %q: %v", line, err)
		}
		if e.ID == longID {
			last = e.Event
		}
	}
	if last != "started" {
		t.Fatalf("journal's last event for the drained job is %q, want started (recoverable)", last)
	}

	// Phase 3: a restarted daemon recovers the interrupted job.
	_, base = startDaemon()
	r, err := http.Get(base + "/v1/jobs/" + longID)
	if err != nil {
		t.Fatalf("GET recovered job: %v", err)
	}
	decodeBody(t, r, &st)
	if !st.Recovered {
		t.Fatalf("job %s not recovered after restart: %+v", longID, st)
	}
	if st.State.Terminal() && st.State != server.JobDone {
		t.Fatalf("recovered job in unexpected terminal state %s: %s", st.State, st.Error)
	}
	fmt.Printf("serve-smoke: golden stream byte-identical; %s drained and recovered (state %s)\n", longID, st.State)
}

func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	if resp.StatusCode >= 300 {
		t.Fatalf("HTTP %s: %s", resp.Status, data)
	}
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("decoding %s: %v", data, err)
	}
}
