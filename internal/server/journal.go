package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// The job journal is the daemon's crash-consistency story, reusing the
// cmd/sweep -resume checkpoint idiom: an append-only JSON-Lines file of
// job lifecycle events, flushed per event, torn-final-line tolerant on
// load. A job is recoverable exactly when its last journaled event is
// non-terminal ("submitted" or "started"): a restarted daemon re-queues
// it and — determinism being the whole point — the re-run produces the
// same results the interrupted run would have. Terminal events keep the
// job visible as history; results and metric streams are not journaled.
//
// Journal events:
//
//	{"event":"submitted","id":"job-000001","req":{...}}
//	{"event":"started","id":"job-000001"}
//	{"event":"done","id":"job-000001"}
//	{"event":"failed","id":"job-000001","error":"..."}
//	{"event":"cancelled","id":"job-000001"}
type journalEntry struct {
	Event string      `json:"event"`
	ID    string      `json:"id"`
	Req   *JobRequest `json:"req,omitempty"`
	Error string      `json:"error,omitempty"`
}

// journal appends lifecycle events to the journal file. A nil *journal is
// valid and records nothing (journalling disabled).
type journal struct {
	f *os.File
}

// openJournal opens (creating if needed) the append-only journal.
func openJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &journal{f: f}, nil
}

// append writes one event, unbuffered so a crash loses at most the event
// being written (a torn final line, tolerated on load).
func (j *journal) append(e journalEntry) error {
	if j == nil {
		return nil
	}
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = j.f.Write(append(b, '\n'))
	return err
}

// Close closes the journal file.
func (j *journal) Close() error {
	if j == nil {
		return nil
	}
	return j.f.Close()
}

// loadJournal replays a journal file into its entries. A missing file is
// an empty journal. A torn final line — the signature of a crash
// mid-append — is dropped with a warning to stderr; a torn line anywhere
// else is corruption and an error.
func loadJournal(path string) ([]journalEntry, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var out []journalEntry
	scan := bufio.NewScanner(f)
	scan.Buffer(make([]byte, 0, 1<<20), 1<<20)
	torn := ""
	lineNo := 0
	for scan.Scan() {
		lineNo++
		line := strings.TrimSpace(scan.Text())
		if line == "" {
			continue
		}
		if torn != "" {
			return nil, fmt.Errorf("journal %s: corrupt record at line %s", path, torn)
		}
		var e journalEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			torn = strconv.Itoa(lineNo) // tolerated only as the final line
			continue
		}
		out = append(out, e)
	}
	if err := scan.Err(); err != nil {
		return nil, fmt.Errorf("journal %s: %w", path, err)
	}
	if torn != "" {
		fmt.Fprintf(os.Stderr, "greencelld: journal %s: dropping torn final line %s (interrupted write); its event is lost\n", path, torn)
	}
	return out, nil
}

// jobIDNum parses the numeric suffix of "job-000123" IDs (0 if foreign).
func jobIDNum(id string) int {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "job-"))
	if err != nil {
		return 0
	}
	return n
}

// jobID renders the canonical ID for job number n.
func jobID(n int) string {
	return fmt.Sprintf("job-%06d", n)
}
