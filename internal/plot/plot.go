// Package plot renders line and grouped-bar charts as standalone SVG, used
// by cmd/figures to draw the paper's Figure 2 panels next to their TSV
// tables.
//
// The visual rules follow the repository's data-viz conventions: a fixed,
// CVD-validated categorical palette assigned in order (never cycled), one
// y-axis, thin marks (2px lines, 8px markers, 2px gaps between bars),
// recessive grid and axes, text in text colors (never series colors), a
// legend whenever there are two or more series, and per-mark <title>
// tooltips. Numeric tables (TSV) accompany every figure as the relief for
// low-contrast slots.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// The validated light-mode palette, in its fixed CVD-safe order.
var seriesColors = []string{
	"#2a78d6", // blue
	"#1baf7a", // aqua
	"#eda100", // yellow
	"#008300", // green
	"#4a3aa7", // violet
	"#e34948", // red
	"#e87ba4", // magenta
	"#eb6834", // orange
}

const (
	surfaceColor   = "#fcfcfb"
	gridColor      = "#e7e6e2"
	axisColor      = "#c3c2b7"
	textPrimary    = "#0b0b0b"
	textSecondary  = "#52514e"
	defaultWidth   = 680
	defaultHeight  = 420
	marginLeft     = 64
	marginRight    = 16
	marginTop      = 44
	marginBottom   = 48
	legendRowH     = 16
	maxSeriesSlots = 8
)

// Series is one named line (X ascending) or bar group member.
type Series struct {
	Name string
	X, Y []float64
}

// Chart describes one figure.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Width and Height default to 680x420.
	Width, Height int
}

// ErrChart reports an unrenderable chart.
var ErrChart = fmt.Errorf("plot: invalid chart")

func (c *Chart) dims() (w, h int) {
	w, h = c.Width, c.Height
	if w == 0 {
		w = defaultWidth
	}
	if h == 0 {
		h = defaultHeight
	}
	return w, h
}

func (c *Chart) validate(needX bool) error {
	if len(c.Series) == 0 {
		return fmt.Errorf("%w: no series", ErrChart)
	}
	if len(c.Series) > maxSeriesSlots {
		return fmt.Errorf("%w: %d series exceeds the %d palette slots (fold extras into 'other')",
			ErrChart, len(c.Series), maxSeriesSlots)
	}
	for i, s := range c.Series {
		if len(s.Y) == 0 {
			return fmt.Errorf("%w: series %d empty", ErrChart, i)
		}
		if needX && len(s.X) != len(s.Y) {
			return fmt.Errorf("%w: series %d has %d x for %d y", ErrChart, i, len(s.X), len(s.Y))
		}
		for _, v := range append(append([]float64(nil), s.X...), s.Y...) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: series %d contains non-finite values", ErrChart, i)
			}
		}
	}
	return nil
}

// niceTicks returns ~n tick positions covering [lo, hi] on a 1/2/5 grid.
func niceTicks(lo, hi float64, n int) []float64 {
	if hi < lo {
		lo, hi = hi, lo
	}
	//lint:allow nofloateq -- degenerate-range guard: only an exactly empty range needs widening
	if hi == lo {
		hi = lo + 1
	}
	raw := (hi - lo) / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch {
	case raw/mag < 1.5:
		step = mag
	case raw/mag < 3.5:
		step = 2 * mag
	case raw/mag < 7.5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	first := math.Ceil(lo/step) * step
	var ticks []float64
	for v := first; v <= hi+step*1e-9; v += step {
		// Snap tiny float noise onto the grid.
		ticks = append(ticks, math.Round(v/step)*step)
	}
	return ticks
}

// fmtTick renders an axis value compactly (1.2k, 3.5M, 1e+06 fallbacks).
func fmtTick(v float64) string {
	a := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case a >= 1e6:
		return strings.Replace(fmt.Sprintf("%.1fM", v/1e6), ".0M", "M", 1)
	case a >= 1e3:
		s := fmt.Sprintf("%.1fk", v/1e3)
		return strings.Replace(s, ".0k", "k", 1)
	case a >= 1:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.2f", v), "0"), ".")
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

type svgBuilder struct {
	b strings.Builder
}

func (s *svgBuilder) f(format string, args ...any) {
	fmt.Fprintf(&s.b, format, args...)
	s.b.WriteByte('\n')
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// header emits the envelope, surface, title, axis labels, and legend, and
// returns the plot rectangle.
func (c *Chart) header(s *svgBuilder) (x0, y0, x1, y1 float64) {
	w, h := c.dims()
	s.f(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="Helvetica,Arial,sans-serif">`, w, h, w, h)
	s.f(`<rect width="%d" height="%d" fill="%s"/>`, w, h, surfaceColor)
	s.f(`<text x="%d" y="20" font-size="13" font-weight="600" fill="%s">%s</text>`,
		marginLeft, textPrimary, esc(c.Title))
	if c.XLabel != "" {
		s.f(`<text x="%d" y="%d" font-size="11" fill="%s" text-anchor="middle">%s</text>`,
			(marginLeft+w-marginRight)/2, h-10, textSecondary, esc(c.XLabel))
	}
	if c.YLabel != "" {
		s.f(`<text x="14" y="%d" font-size="11" fill="%s" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`,
			(marginTop+h-marginBottom)/2, textSecondary, (marginTop+h-marginBottom)/2, esc(c.YLabel))
	}
	// Legend: only for two or more series (a single series is named by the
	// title). Swatches carry the identity; text stays in text color. Long
	// names or many series switch to a vertical list and push the plot
	// region down so the legend never overlaps the marks.
	top := float64(marginTop)
	if len(c.Series) >= 2 {
		maxLen := 0
		for _, sr := range c.Series {
			if len(sr.Name) > maxLen {
				maxLen = len(sr.Name)
			}
		}
		nameW := float64(6*maxLen + 22)
		if maxLen <= 12 && len(c.Series) <= 4 {
			// Two-row, multi-column layout beside the title.
			lx := float64(w-marginRight) - nameW*float64((len(c.Series)+1)/2)
			for i, sr := range c.Series {
				yy := 30 + float64(i%2)*legendRowH
				xx := lx + float64(i/2)*nameW
				s.f(`<rect x="%.1f" y="%.1f" width="10" height="10" rx="2" fill="%s"/>`,
					xx, yy-9, seriesColors[i])
				s.f(`<text x="%.1f" y="%.1f" font-size="10" fill="%s">%s</text>`,
					xx+14, yy, textSecondary, esc(sr.Name))
			}
			if top < 56 {
				top = 56
			}
		} else {
			// Vertical list; the plot area starts below it.
			lx := float64(w-marginRight) - nameW
			for i, sr := range c.Series {
				yy := 34 + float64(i)*legendRowH
				s.f(`<rect x="%.1f" y="%.1f" width="10" height="10" rx="2" fill="%s"/>`,
					lx, yy-9, seriesColors[i])
				s.f(`<text x="%.1f" y="%.1f" font-size="10" fill="%s">%s</text>`,
					lx+14, yy, textSecondary, esc(sr.Name))
			}
			if bottom := 34 + float64(len(c.Series))*legendRowH + 6; top < bottom {
				top = bottom
			}
		}
	}
	return marginLeft, top, float64(w - marginRight), float64(h - marginBottom)
}

// yAxis draws the grid and y ticks for [lo,hi], returning the scaler.
func yAxis(s *svgBuilder, x0, y0, x1, y1, lo, hi float64) func(float64) float64 {
	//lint:allow nofloateq -- degenerate-range guard: only an exactly empty range needs widening
	if hi == lo {
		hi = lo + 1
	}
	scale := func(v float64) float64 { return y1 - (v-lo)/(hi-lo)*(y1-y0) }
	for _, t := range niceTicks(lo, hi, 5) {
		y := scale(t)
		s.f(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`,
			x0, y, x1, y, gridColor)
		s.f(`<text x="%.1f" y="%.1f" font-size="10" fill="%s" text-anchor="end">%s</text>`,
			x0-6, y+3, textSecondary, fmtTick(t))
	}
	// Baseline.
	s.f(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`,
		x0, y1, x1, y1, axisColor)
	return scale
}

// LineSVG renders the chart as a multi-series line chart.
func (c *Chart) LineSVG(w io.Writer) error {
	if err := c.validate(true); err != nil {
		return err
	}
	var s svgBuilder
	x0, y0, x1, y1 := c.header(&s)

	xlo, xhi := math.Inf(1), math.Inf(-1)
	ylo, yhi := math.Inf(1), math.Inf(-1)
	for _, sr := range c.Series {
		for i := range sr.X {
			xlo, xhi = math.Min(xlo, sr.X[i]), math.Max(xhi, sr.X[i])
			ylo, yhi = math.Min(ylo, sr.Y[i]), math.Max(yhi, sr.Y[i])
		}
	}
	if ylo > 0 {
		ylo = 0 // anchor magnitude lines at zero when data is non-negative
	}
	//lint:allow nofloateq -- degenerate-range guard: only an exactly empty range needs widening
	if xhi == xlo {
		xhi = xlo + 1
	}
	pad := (yhi - ylo) * 0.05
	yhi += pad
	if ylo < 0 {
		ylo -= pad
	}

	sy := yAxis(&s, x0, y0, x1, y1, ylo, yhi)
	sx := func(v float64) float64 { return x0 + (v-xlo)/(xhi-xlo)*(x1-x0) }
	for _, t := range niceTicks(xlo, xhi, 6) {
		if t < xlo-1e-9 || t > xhi+1e-9 {
			continue
		}
		s.f(`<text x="%.1f" y="%.1f" font-size="10" fill="%s" text-anchor="middle">%s</text>`,
			sx(t), y1+16, textSecondary, fmtTick(t))
	}
	// Zero line when the range crosses zero.
	if ylo < 0 && yhi > 0 {
		s.f(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1" stroke-dasharray="4 3"/>`,
			x0, sy(0), x1, sy(0), axisColor)
	}

	for si, sr := range c.Series {
		color := seriesColors[si]
		var pts []string
		for i := range sr.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", sx(sr.X[i]), sy(sr.Y[i])))
		}
		s.f(`<polyline points="%s" fill="none" stroke="%s" stroke-width="2" stroke-linejoin="round"/>`,
			strings.Join(pts, " "), color)
		// Markers with tooltips — only when sparse enough to stay thin.
		if len(sr.X) <= 40 {
			for i := range sr.X {
				s.f(`<circle cx="%.1f" cy="%.1f" r="4" fill="%s"><title>%s: (%s, %s)</title></circle>`,
					sx(sr.X[i]), sy(sr.Y[i]), color, esc(sr.Name), fmtTick(sr.X[i]), fmtTick(sr.Y[i]))
			}
		}
	}
	s.f(`</svg>`)
	_, err := io.WriteString(w, s.b.String())
	return err
}

// BarSVG renders the chart as a grouped bar chart: each series contributes
// one bar per group; GroupLabels name the groups (len = len(Series[i].Y)).
func (c *Chart) BarSVG(w io.Writer, groupLabels []string) error {
	if err := c.validate(false); err != nil {
		return err
	}
	groups := len(c.Series[0].Y)
	for i, sr := range c.Series {
		if len(sr.Y) != groups {
			return fmt.Errorf("%w: series %d has %d values for %d groups", ErrChart, i, len(sr.Y), groups)
		}
	}
	if len(groupLabels) != groups {
		return fmt.Errorf("%w: %d group labels for %d groups", ErrChart, len(groupLabels), groups)
	}

	var s svgBuilder
	x0, y0, x1, y1 := c.header(&s)
	yhi := math.Inf(-1)
	for _, sr := range c.Series {
		for _, v := range sr.Y {
			if v < 0 {
				return fmt.Errorf("%w: bar charts require non-negative values", ErrChart)
			}
			yhi = math.Max(yhi, v)
		}
	}
	yhi *= 1.05
	sy := yAxis(&s, x0, y0, x1, y1, 0, yhi)

	groupW := (x1 - x0) / float64(groups)
	// 2px surface gaps between adjacent bars; bars thin relative to slot.
	barW := math.Min(28, (groupW-12)/float64(len(c.Series))-2)
	for g := 0; g < groups; g++ {
		cx := x0 + (float64(g)+0.5)*groupW
		total := float64(len(c.Series))*barW + float64(len(c.Series)-1)*2
		start := cx - total/2
		for si, sr := range c.Series {
			x := start + float64(si)*(barW+2)
			yTop := sy(sr.Y[g])
			r := math.Min(4, barW/2)
			// Rounded top corners, square base (data-end rounding anchored
			// to the baseline).
			s.f(`<path d="M%.1f %.1f L%.1f %.1f Q%.1f %.1f %.1f %.1f L%.1f %.1f Q%.1f %.1f %.1f %.1f L%.1f %.1f Z" fill="%s"><title>%s, %s: %s</title></path>`,
				x, y1, x, yTop+r, x, yTop, x+r, yTop,
				x+barW-r, yTop, x+barW, yTop, x+barW, yTop+r,
				x+barW, y1, seriesColors[si],
				esc(sr.Name), esc(groupLabels[g]), fmtTick(sr.Y[g]))
		}
		s.f(`<text x="%.1f" y="%.1f" font-size="10" fill="%s" text-anchor="middle">%s</text>`,
			cx, y1+16, textSecondary, esc(groupLabels[g]))
	}
	s.f(`</svg>`)
	_, err := io.WriteString(w, s.b.String())
	return err
}
