package plot

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

func lineChart() *Chart {
	return &Chart{
		Title:  "bounds vs V",
		XLabel: "V",
		YLabel: "cost",
		Series: []Series{
			{Name: "upper", X: []float64{1, 2, 3}, Y: []float64{10, 11, 12}},
			{Name: "lower", X: []float64{1, 2, 3}, Y: []float64{-5, 4, 9}},
		},
	}
}

// wellFormed parses the SVG as XML — catching unescaped text, unclosed
// tags, and attribute breakage.
func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed: %v", err)
		}
	}
}

func TestLineSVG(t *testing.T) {
	var b strings.Builder
	if err := lineChart().LineSVG(&b); err != nil {
		t.Fatal(err)
	}
	svg := b.String()
	wellFormed(t, svg)
	if !strings.Contains(svg, "polyline") {
		t.Error("no polylines emitted")
	}
	// Fixed palette order: slot 1 blue, slot 2 aqua.
	if !strings.Contains(svg, seriesColors[0]) || !strings.Contains(svg, seriesColors[1]) {
		t.Error("palette slots missing")
	}
	// Two series: legend with both names.
	if !strings.Contains(svg, "upper") || !strings.Contains(svg, "lower") {
		t.Error("legend names missing")
	}
	// Negative y values: a dashed zero line appears.
	if !strings.Contains(svg, "stroke-dasharray") {
		t.Error("zero line missing despite negative values")
	}
	// Tooltips on markers.
	if !strings.Contains(svg, "<title>") {
		t.Error("marker tooltips missing")
	}
}

func TestSingleSeriesHasNoLegend(t *testing.T) {
	c := &Chart{
		Title:  "one",
		Series: []Series{{Name: "solo", X: []float64{0, 1}, Y: []float64{1, 2}}},
	}
	var b strings.Builder
	if err := c.LineSVG(&b); err != nil {
		t.Fatal(err)
	}
	// The legend rect (rx="2" swatch) must be absent; the title names the
	// single series.
	if strings.Contains(b.String(), `width="10" height="10"`) {
		t.Error("legend swatch emitted for a single series")
	}
}

func TestBarSVG(t *testing.T) {
	c := &Chart{
		Title: "architectures",
		Series: []Series{
			{Name: "proposed", Y: []float64{1, 2, 3}},
			{Name: "baseline", Y: []float64{4, 5, 6}},
		},
	}
	var b strings.Builder
	if err := c.BarSVG(&b, []string{"1e5", "3e5", "5e5"}); err != nil {
		t.Fatal(err)
	}
	svg := b.String()
	wellFormed(t, svg)
	if got := strings.Count(svg, "<path"); got != 6 {
		t.Errorf("bar count = %d, want 6", got)
	}
	if !strings.Contains(svg, "1e5") {
		t.Error("group labels missing")
	}
}

func TestBarSVGValidation(t *testing.T) {
	c := &Chart{Title: "x", Series: []Series{{Name: "a", Y: []float64{1, -2}}}}
	var b strings.Builder
	if err := c.BarSVG(&b, []string{"g1", "g2"}); err == nil {
		t.Error("negative bar values accepted")
	}
	c2 := &Chart{Title: "x", Series: []Series{{Name: "a", Y: []float64{1}}}}
	if err := c2.BarSVG(&b, []string{"g1", "g2"}); err == nil {
		t.Error("mismatched group labels accepted")
	}
}

func TestValidation(t *testing.T) {
	var b strings.Builder
	if err := (&Chart{}).LineSVG(&b); err == nil {
		t.Error("empty chart accepted")
	}
	bad := &Chart{Series: []Series{{Name: "n", X: []float64{1}, Y: []float64{math.NaN()}}}}
	if err := bad.LineSVG(&b); err == nil {
		t.Error("NaN accepted")
	}
	short := &Chart{Series: []Series{{Name: "n", X: []float64{1}, Y: []float64{1, 2}}}}
	if err := short.LineSVG(&b); err == nil {
		t.Error("length mismatch accepted")
	}
	var many []Series
	for i := 0; i < 9; i++ {
		many = append(many, Series{Name: "s", X: []float64{1}, Y: []float64{1}})
	}
	if err := (&Chart{Series: many}).LineSVG(&b); err == nil {
		t.Error("9 series accepted (palette has 8 slots)")
	}
}

func TestEscaping(t *testing.T) {
	c := &Chart{
		Title:  `a <b> & "c"`,
		Series: []Series{{Name: "x<y>", X: []float64{0, 1}, Y: []float64{1, 2}}},
	}
	var b strings.Builder
	if err := c.LineSVG(&b); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, b.String())
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(0, 100, 5)
	if len(ticks) < 4 || ticks[0] != 0 || ticks[len(ticks)-1] != 100 {
		t.Errorf("ticks(0,100) = %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatalf("ticks not increasing: %v", ticks)
		}
	}
	// Degenerate range must not loop forever or return nothing.
	if got := niceTicks(5, 5, 4); len(got) == 0 {
		t.Error("degenerate range gave no ticks")
	}
	// Negative range.
	neg := niceTicks(-50, 50, 4)
	hasZero := false
	for _, v := range neg {
		if v == 0 {
			hasZero = true
		}
	}
	if !hasZero {
		t.Errorf("ticks(-50,50) missing zero: %v", neg)
	}
}

func TestFmtTick(t *testing.T) {
	tests := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{1500, "1.5k"},
		{2000, "2k"},
		{1.2e6, "1.2M"},
		{3, "3"},
		{2.5, "2.5"},
		{0.004, "0.004"},
		{-4000, "-4k"},
	}
	for _, tt := range tests {
		if got := fmtTick(tt.v); got != tt.want {
			t.Errorf("fmtTick(%v) = %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestVerticalLegendForLongNames(t *testing.T) {
	c := &Chart{
		Title: "long names",
		Series: []Series{
			{Name: "multi-hop + renewable (proposed)", X: []float64{0, 1}, Y: []float64{1, 2}},
			{Name: "one-hop w/o renewable energy", X: []float64{0, 1}, Y: []float64{2, 3}},
		},
	}
	var b strings.Builder
	if err := c.LineSVG(&b); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, b.String())
	// Vertical legend: the two swatches share an x coordinate.
	first := strings.Index(b.String(), `width="10" height="10"`)
	if first < 0 {
		t.Fatal("legend missing")
	}
}

func TestManySeriesVerticalLegend(t *testing.T) {
	c := &Chart{Title: "five"}
	for i := 0; i < 5; i++ {
		c.Series = append(c.Series, Series{
			Name: "s" + string(rune('A'+i)),
			X:    []float64{0, 1}, Y: []float64{float64(i), float64(i + 1)},
		})
	}
	var b strings.Builder
	if err := c.LineSVG(&b); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, b.String())
	if got := strings.Count(b.String(), `width="10" height="10"`); got != 5 {
		t.Errorf("legend swatches = %d, want 5", got)
	}
}
