package spectrum

import (
	"testing"

	"greencell/internal/rng"
)

func TestPaperModel(t *testing.T) {
	m := Paper()
	if m.NumBands() != 5 {
		t.Fatalf("NumBands = %d, want 5", m.NumBands())
	}
	if !m.Bands[0].Universal {
		t.Error("cellular band should be universal")
	}
	for i := 1; i < 5; i++ {
		if m.Bands[i].Universal {
			t.Errorf("shared band %d should not be universal", i)
		}
	}
	if m.MaxWidth() != 2e6 {
		t.Errorf("MaxWidth = %v, want 2e6", m.MaxWidth())
	}
}

func TestSampleWidthsInRange(t *testing.T) {
	m := Paper()
	src := rng.New(1)
	for trial := 0; trial < 200; trial++ {
		w := m.SampleWidths(src)
		if len(w) != 5 {
			t.Fatalf("got %d widths", len(w))
		}
		if w[0] != 1e6 {
			t.Fatalf("cellular width = %v, want constant 1e6", w[0])
		}
		for i := 1; i < 5; i++ {
			if w[i] < 1e6 || w[i] > 2e6 {
				t.Fatalf("band %d width %v outside [1e6,2e6]", i, w[i])
			}
		}
	}
}

func TestWidthDistBounds(t *testing.T) {
	tests := []struct {
		name     string
		d        WidthDist
		min, max float64
	}{
		{"constant", Constant(5), 5, 5},
		{"uniform", Uniform{Lo: 1, Hi: 3}, 1, 3},
	}
	src := rng.New(2)
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.d.Min().Hz() != tt.min || tt.d.Max().Hz() != tt.max {
				t.Fatalf("Min/Max = %v/%v, want %v/%v", tt.d.Min(), tt.d.Max(), tt.min, tt.max)
			}
			for i := 0; i < 100; i++ {
				v := tt.d.Sample(src).Hz()
				if v < tt.min || v > tt.max {
					t.Fatalf("sample %v outside [%v,%v]", v, tt.min, tt.max)
				}
			}
		})
	}
}

func TestAvailabilityGrantAll(t *testing.T) {
	m := Paper()
	a := NewAvailability(3, m)
	a.GrantAll(1)
	for b := 0; b < m.NumBands(); b++ {
		if a.Has(0, b) {
			t.Error("node 0 should have nothing")
		}
		if !a.Has(1, b) {
			t.Error("node 1 should have everything")
		}
	}
	if got := len(a.Bands(1)); got != 5 {
		t.Errorf("Bands(1) size = %d, want 5", got)
	}
}

func TestGrantRandomSubsetIncludesUniversal(t *testing.T) {
	m := Paper()
	src := rng.New(3)
	for trial := 0; trial < 100; trial++ {
		a := NewAvailability(1, m)
		a.GrantRandomSubset(0, m, src)
		if !a.Has(0, 0) {
			t.Fatal("universal band missing from random subset")
		}
		// Must include at least one shared band too.
		shared := 0
		for b := 1; b < m.NumBands(); b++ {
			if a.Has(0, b) {
				shared++
			}
		}
		if shared < 1 {
			t.Fatal("no shared band granted")
		}
	}
}

func TestCommon(t *testing.T) {
	m := Paper()
	a := NewAvailability(2, m)
	a.GrantAll(0)
	// Node 1 sees only bands 0 and 2.
	a.has[1][0] = true
	a.has[1][2] = true
	got := a.Common(0, 1)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Common = %v, want [0 2]", got)
	}
	if c := a.Common(1, 1); len(c) != 2 {
		t.Fatalf("self Common = %v", c)
	}
}

// Property: Common(i,j) is exactly the intersection of Bands(i) and
// Bands(j), for random availability tables.
func TestCommonIsIntersectionProperty(t *testing.T) {
	m := Paper()
	src := rng.New(99)
	for trial := 0; trial < 200; trial++ {
		a := NewAvailability(2, m)
		for node := 0; node < 2; node++ {
			for b := 0; b < m.NumBands(); b++ {
				if src.Bernoulli(0.5) {
					a.has[node][b] = true
				}
			}
		}
		want := map[int]bool{}
		for _, b := range a.Bands(0) {
			want[b] = true
		}
		inter := map[int]bool{}
		for _, b := range a.Bands(1) {
			if want[b] {
				inter[b] = true
			}
		}
		got := a.Common(0, 1)
		if len(got) != len(inter) {
			t.Fatalf("Common size %d, want %d", len(got), len(inter))
		}
		for _, b := range got {
			if !inter[b] {
				t.Fatalf("Common contains %d not in intersection", b)
			}
		}
	}
}
