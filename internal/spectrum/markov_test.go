package spectrum

import (
	"testing"

	"greencell/internal/rng"
)

func TestMarkovBounds(t *testing.T) {
	m := &Markov{On: Uniform{Lo: 1e6, Hi: 2e6}, POnToOff: 0.3, POffToOn: 0.3}
	if m.Max() != 2e6 || m.Min() != 0 {
		t.Fatalf("Max/Min = %v/%v", m.Max(), m.Min())
	}
	src := rng.New(1)
	for i := 0; i < 500; i++ {
		w := m.Sample(src)
		if w != 0 && (w < 1e6 || w > 2e6) {
			t.Fatalf("sample %v neither OFF nor in ON range", w)
		}
	}
}

func TestMarkovStartState(t *testing.T) {
	on := &Markov{On: Constant(5), POnToOff: 0, POffToOn: 0}
	src := rng.New(2)
	if got := on.Sample(src); got != 5 {
		t.Errorf("default start should be ON, got %v", got)
	}
	off := &Markov{On: Constant(5), POnToOff: 0, POffToOn: 0, StartOff: true}
	if got := off.Sample(src); got != 0 {
		t.Errorf("StartOff should begin OFF, got %v", got)
	}
	// Zero transition probabilities freeze the chain.
	for i := 0; i < 20; i++ {
		if on.Sample(src) != 5 || off.Sample(src) != 0 {
			t.Fatal("chain moved despite zero transition probabilities")
		}
	}
}

func TestMarkovStationaryFraction(t *testing.T) {
	// p(on->off)=0.1, p(off->on)=0.3: stationary ON fraction = 0.75.
	m := &Markov{On: Constant(1), POnToOff: 0.1, POffToOn: 0.3}
	src := rng.New(3)
	on := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if m.Sample(src) > 0 {
			on++
		}
	}
	f := float64(on) / n
	if f < 0.72 || f > 0.78 {
		t.Errorf("ON fraction = %v, want ~0.75", f)
	}
}

func TestMarkovBurstiness(t *testing.T) {
	// Sticky chain: consecutive samples should agree far more often than
	// an i.i.d. process with the same marginal would (0.5²+0.5² = 0.5).
	m := &Markov{On: Constant(1), POnToOff: 0.05, POffToOn: 0.05}
	src := rng.New(4)
	prev := m.Sample(src)
	agree := 0
	const n = 20000
	for i := 0; i < n; i++ {
		cur := m.Sample(src)
		if (cur > 0) == (prev > 0) {
			agree++
		}
		prev = cur
	}
	if f := float64(agree) / n; f < 0.85 {
		t.Errorf("consecutive agreement = %v, want ≫ 0.5 (bursty)", f)
	}
}

func TestModelCloneSeparatesMarkovState(t *testing.T) {
	m := &Model{Bands: []Band{{Name: "m", Width: &Markov{On: Constant(1), POnToOff: 0.5, POffToOn: 0.5}}}}
	a := m.Clone()
	b := m.Clone()
	srcA, srcB := rng.New(1), rng.New(2)
	// Drive a far ahead; b must be unaffected (fresh chain, same marginals).
	for i := 0; i < 100; i++ {
		a.SampleWidths(srcA)
	}
	// b's first sample starts from the chain's initial ON state.
	if w := b.SampleWidths(srcB)[0]; w != 1 {
		t.Fatalf("clone b did not start fresh: first width %v", w)
	}
	// Stateless bands are shared untouched.
	m2 := Paper()
	c := m2.Clone()
	if c.NumBands() != m2.NumBands() {
		t.Fatal("clone changed band count")
	}
}
