// Package spectrum models the dynamic spectrum environment of the paper's
// Section II-A: a set of bands M whose per-slot bandwidths {W_m(t)} are
// random processes observable at the beginning of each slot, and per-node
// availability sets M_i ⊆ M.
package spectrum

import (
	"fmt"

	"greencell/internal/rng"
	"greencell/internal/units"
)

// WidthDist describes the bandwidth process of a single band.
type WidthDist interface {
	// Sample draws the band's width for one slot.
	Sample(src *rng.Source) units.Bandwidth
	// Max returns the largest width the process can produce; it feeds the
	// c_ij^max terms of the Lyapunov constant B (paper eq. (34)).
	Max() units.Bandwidth
	// Min returns the smallest width the process can produce.
	Min() units.Bandwidth
}

// Constant is a band whose width never changes (value in Hz).
type Constant float64

// Sample implements WidthDist.
func (c Constant) Sample(*rng.Source) units.Bandwidth { return units.Hz(float64(c)) }

// Max implements WidthDist.
func (c Constant) Max() units.Bandwidth { return units.Hz(float64(c)) }

// Min implements WidthDist.
func (c Constant) Min() units.Bandwidth { return units.Hz(float64(c)) }

// Uniform is a band whose width is i.i.d. uniform in [Lo, Hi] each slot.
type Uniform struct {
	Lo, Hi units.Bandwidth
}

// Sample implements WidthDist.
func (u Uniform) Sample(src *rng.Source) units.Bandwidth {
	return units.Hz(src.Uniform(u.Lo.Hz(), u.Hi.Hz()))
}

// Max implements WidthDist.
func (u Uniform) Max() units.Bandwidth { return u.Hi }

// Min implements WidthDist.
func (u Uniform) Min() units.Bandwidth { return u.Lo }

// Band is one spectrum band.
type Band struct {
	Name  string
	Width WidthDist
	// Universal marks a band every node can always access (the licensed
	// cellular band in the paper's simulation setup).
	Universal bool
}

// Model is the set of bands available in the system.
type Model struct {
	Bands []Band
}

// Paper returns the paper's Section VI setup: one 1 MHz cellular band plus
// four bands i.i.d. uniform in [1, 2] MHz each slot.
func Paper() *Model {
	m := &Model{}
	m.Bands = append(m.Bands, Band{Name: "cellular", Width: Constant(1e6), Universal: true})
	for i := 1; i <= 4; i++ {
		m.Bands = append(m.Bands, Band{
			Name:  fmt.Sprintf("shared-%d", i),
			Width: Uniform{Lo: 1e6, Hi: 2e6},
		})
	}
	return m
}

// WidthCloner is implemented by stateful width processes that must not be
// shared between simulations; Model.Clone duplicates them.
type WidthCloner interface {
	// CloneWidth returns an independent copy with fresh state.
	CloneWidth() WidthDist
}

// Clone returns a copy of the model whose stateful band processes are
// duplicated, so two simulations built from the same configuration never
// share Markov-chain state.
func (m *Model) Clone() *Model {
	out := &Model{Bands: make([]Band, len(m.Bands))}
	copy(out.Bands, m.Bands)
	for i := range out.Bands {
		if c, ok := out.Bands[i].Width.(WidthCloner); ok {
			out.Bands[i].Width = c.CloneWidth()
		}
	}
	return out
}

// NumBands returns the number of bands.
func (m *Model) NumBands() int { return len(m.Bands) }

// SampleWidths draws each band's width for one slot.
func (m *Model) SampleWidths(src *rng.Source) []units.Bandwidth {
	w := make([]units.Bandwidth, len(m.Bands))
	for i, b := range m.Bands {
		w[i] = b.Width.Sample(src)
	}
	return w
}

// MaxWidth returns the largest width any band can take.
func (m *Model) MaxWidth() units.Bandwidth {
	mx := units.Bandwidth(0)
	for _, b := range m.Bands {
		if w := b.Width.Max(); w > mx {
			mx = w
		}
	}
	return mx
}

// Availability records which bands each node can access (the sets M_i).
type Availability struct {
	numBands int
	has      [][]bool // [node][band]
}

// NewAvailability creates an all-false availability table for numNodes
// nodes and the bands of m.
func NewAvailability(numNodes int, m *Model) *Availability {
	a := &Availability{numBands: m.NumBands(), has: make([][]bool, numNodes)}
	for i := range a.has {
		a.has[i] = make([]bool, m.NumBands())
	}
	return a
}

// NumNodes returns the number of nodes in the table.
func (a *Availability) NumNodes() int { return len(a.has) }

// GrantAll gives node access to every band.
func (a *Availability) GrantAll(node int) {
	for b := range a.has[node] {
		a.has[node][b] = true
	}
}

// GrantRandomSubset gives node access to every Universal band plus a
// uniformly random non-empty subset of the remaining bands.
func (a *Availability) GrantRandomSubset(node int, m *Model, src *rng.Source) {
	var shared []int
	for b, band := range m.Bands {
		if band.Universal {
			a.has[node][b] = true
		} else {
			shared = append(shared, b)
		}
	}
	for _, k := range src.SubsetAtLeastOne(len(shared)) {
		a.has[node][shared[k]] = true
	}
}

// Has reports whether node can access band.
func (a *Availability) Has(node, band int) bool { return a.has[node][band] }

// Bands returns the sorted list of bands node can access.
func (a *Availability) Bands(node int) []int {
	var out []int
	for b, ok := range a.has[node] {
		if ok {
			out = append(out, b)
		}
	}
	return out
}

// Common returns the bands accessible to both i and j (M_i ∩ M_j), the set
// over which link (i,j) may be scheduled.
func (a *Availability) Common(i, j int) []int {
	var out []int
	for b := 0; b < a.numBands; b++ {
		if a.has[i][b] && a.has[j][b] {
			out = append(out, b)
		}
	}
	return out
}

// Markov is a Gilbert-Elliott band: a two-state Markov chain toggles the
// band between ON (width drawn from On) and OFF (width 0) across slots.
// It extends the paper's i.i.d. bandwidth processes with temporal
// correlation — primary-user activity on shared spectrum.
//
// Markov is stateful: Sample advances the chain, so a Markov value must not
// be shared between bands or concurrent simulations.
type Markov struct {
	// On is the width process while the band is available.
	On WidthDist
	// POnToOff and POffToOn are the per-slot transition probabilities.
	POnToOff, POffToOn float64
	// StartOff starts the chain in the OFF state.
	StartOff bool

	started bool
	off     bool
}

// Sample implements WidthDist, advancing the chain by one slot.
func (m *Markov) Sample(src *rng.Source) units.Bandwidth {
	if !m.started {
		m.off = m.StartOff
		m.started = true
	} else if m.off {
		if src.Bernoulli(m.POffToOn) {
			m.off = false
		}
	} else {
		if src.Bernoulli(m.POnToOff) {
			m.off = true
		}
	}
	if m.off {
		return 0
	}
	return m.On.Sample(src)
}

// Max implements WidthDist.
func (m *Markov) Max() units.Bandwidth { return m.On.Max() }

// Min implements WidthDist. An OFF slot has zero width.
func (m *Markov) Min() units.Bandwidth { return 0 }

// CloneWidth implements WidthCloner: the copy starts a fresh chain.
func (m *Markov) CloneWidth() WidthDist {
	cp := *m
	cp.started = false
	cp.off = false
	return &cp
}

var (
	_ WidthDist   = (*Markov)(nil)
	_ WidthCloner = (*Markov)(nil)
)
