package metrics

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

// TestSlotFieldsDocumented enforces the docs/METRICS.md contract: every
// slot-record column must appear in the document as `name`, and the
// document must state the current schema version.
func TestSlotFieldsDocumented(t *testing.T) {
	data, err := os.ReadFile("../../docs/METRICS.md")
	if err != nil {
		t.Fatalf("docs/METRICS.md must exist alongside the schema: %v", err)
	}
	doc := string(data)
	for _, name := range SlotFieldNames() {
		if !strings.Contains(doc, "`"+name+"`") {
			t.Errorf("slot field %q is not documented in docs/METRICS.md", name)
		}
	}
	want := fmt.Sprintf("Schema version: **%d**", SchemaVersion)
	if !strings.Contains(doc, want) {
		t.Errorf("docs/METRICS.md does not state %q; update the doc when bumping SchemaVersion", want)
	}
}
