package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// SchemaName identifies the record stream format.
const SchemaName = "greencell.metrics"

// SchemaVersion is the version of the record schema emitted by this
// package. Bump it whenever a field of Header, SlotRecord, or Summary is
// added, removed, or changes meaning or unit, and update docs/METRICS.md
// in the same change.
//
// Version history: 2 added the degradation fields (degraded,
// degraded_causes) of the fault-tolerance layer (docs/ROBUSTNESS.md);
// 3 added the on-demand summary counters lp_warm_starts_total and
// lp_basis_invalidations_total of the warm-started LP engine
// (docs/PERFORMANCE.md) — emitted only by runs with warm-starting on,
// so cold streams are byte-compatible with version 2 apart from this
// version field; 4 registered the cluster coordinator's serving-level
// coord_* counters (docs/CLUSTER.md) — slot records and summaries are
// unchanged, so v4 streams differ from v3 only in this version field;
// 5 registered the distributed controller's net_* summary counters
// (docs/DISTRIBUTED.md) — emitted only by distributed runs over a
// non-ideal network, so monolithic and perfect-network streams differ
// from v4 only in this version field.
const SchemaVersion = 5

// Header is the first record of every metrics stream: it pins the schema
// version and the run's identifying parameters, so a stream is
// self-describing. All fields are deterministic for a fixed scenario and
// seed.
type Header struct {
	Type    string `json:"type"` // always "header"
	Schema  string `json:"schema"`
	Version int    `json:"version"`

	// Scenario is a free-form label ("paper", "urban", …).
	Scenario string `json:"scenario,omitempty"`
	// Architecture is the Fig. 2(f) variant name.
	Architecture string `json:"architecture,omitempty"`
	// Scheduler is the S1 solver name ("sf", "greedy", "exact", "relaxed").
	Scheduler string `json:"scheduler,omitempty"`

	V           float64 `json:"v"`
	Lambda      float64 `json:"lambda"`
	SlotSeconds float64 `json:"slot_seconds"`
	Slots       int     `json:"slots"`
	Seed        int64   `json:"seed"`
	Sessions    int     `json:"sessions"`
	Users       int     `json:"users"`
}

// NewHeader stamps the schema identity onto a header.
func NewHeader(h Header) Header {
	h.Type = "header"
	h.Schema = SchemaName
	h.Version = SchemaVersion
	return h
}

// SlotRecord is one slot of the drift-plus-penalty control loop, the core
// of the metrics schema. Field-by-field documentation lives in
// docs/METRICS.md; the invariant worth restating here is that every
// wall-clock timing field name contains "_ns" and everything else is a
// deterministic function of (scenario, seed).
type SlotRecord struct {
	Type string `json:"type"` // always "slot"
	Slot int    `json:"slot"`

	// Stage wall-clock timings (nanoseconds): the four subproblem solves,
	// the queue/battery state update, and the whole Controller.Step.
	S1NS    int64 `json:"s1_ns"`
	S2NS    int64 `json:"s2_ns"`
	S3NS    int64 `json:"s3_ns"`
	QueueNS int64 `json:"queue_ns"`
	S4NS    int64 `json:"s4_ns"`
	TotalNS int64 `json:"total_ns"`

	// LP work behind the slot: simplex solve calls and total simplex
	// iterations (pivots + bound flips) in S1 scheduling and S4 energy
	// management.
	S1LPSolves int `json:"s1_lp_solves"`
	S1LPIters  int `json:"s1_lp_iters"`
	S4LPSolves int `json:"s4_lp_solves"`
	S4LPIters  int `json:"s4_lp_iters"`

	// S1Objective is the scheduler's achieved Σ H_ij·c_ij (bits/s-weighted).
	S1Objective float64 `json:"s1_objective"`
	// S1RelaxedObjective is the LP-relaxation upper bound on S1Objective,
	// present only when gap comparison is enabled (-metrics-gap).
	S1RelaxedObjective *float64 `json:"s1_relaxed_objective,omitempty"`
	ScheduledLinks     int      `json:"scheduled_links"`

	// Traffic admission and delivery (packets).
	OfferedPkts   float64 `json:"offered_pkts"`
	AdmittedPkts  float64 `json:"admitted_pkts"`
	DroppedPkts   float64 `json:"dropped_pkts"`
	DeliveredPkts float64 `json:"delivered_pkts"`

	// Queue state at end of slot: data backlogs Q_i^s split BS/users,
	// virtual link queues Σ H_ij, and Σ|z_i| of the shifted batteries.
	DataBacklogBS    float64 `json:"data_backlog_bs"`
	DataBacklogUsers float64 `json:"data_backlog_users"`
	VirtualBacklogH  float64 `json:"virtual_backlog_h"`
	ShiftedAbsZ      float64 `json:"shifted_abs_z"`

	// Energy state and cost.
	BatteryWhBS      float64 `json:"battery_wh_bs"`
	BatteryWhUsers   float64 `json:"battery_wh_users"`
	GridWh           float64 `json:"grid_wh"`
	EnergyCost       float64 `json:"energy_cost"`
	PenaltyObjective float64 `json:"penalty_objective"`
	MarginalPriceWh  float64 `json:"marginal_price_wh"`
	RenewableWh      float64 `json:"renewable_wh"`
	DemandWh         float64 `json:"demand_wh"`
	TxEnergyWh       float64 `json:"tx_energy_wh"`
	DeficitWh        float64 `json:"deficit_wh"`

	// Degradation state (docs/ROBUSTNESS.md). Degraded is 1 when any
	// stage of the slot fell back to its safe action, else 0;
	// DegradedCauses joins the slot's cause labels with semicolons —
	// CSV-safe without quoting — and is empty on healthy slots.
	Degraded       int    `json:"degraded"`
	DegradedCauses string `json:"degraded_causes,omitempty"`
}

// Summary is the final record: the run-level aggregation of the registry
// (stage-time quantiles, totals). Metric naming conventions are documented
// in docs/METRICS.md; timing-derived entries contain "_ns" in their name.
type Summary struct {
	Type    string             `json:"type"` // always "summary"
	Slots   int                `json:"slots"`
	Metrics map[string]float64 `json:"metrics"`
}

// SlotFieldNames returns the JSON/CSV column names of SlotRecord in
// emission order. docs/METRICS.md documents exactly these names; a test
// cross-checks the two.
func SlotFieldNames() []string {
	names := make([]string, len(slotColumns))
	for i, c := range slotColumns {
		names[i] = c.name
	}
	return names
}

// slotColumns defines the CSV column order (identical to the JSON field
// order) and per-column accessors, avoiding reflection on the hot path.
var slotColumns = []struct {
	name string
	get  func(*SlotRecord) string
}{
	{"slot", func(r *SlotRecord) string { return itoa(r.Slot) }},
	{"s1_ns", func(r *SlotRecord) string { return itoa64(r.S1NS) }},
	{"s2_ns", func(r *SlotRecord) string { return itoa64(r.S2NS) }},
	{"s3_ns", func(r *SlotRecord) string { return itoa64(r.S3NS) }},
	{"queue_ns", func(r *SlotRecord) string { return itoa64(r.QueueNS) }},
	{"s4_ns", func(r *SlotRecord) string { return itoa64(r.S4NS) }},
	{"total_ns", func(r *SlotRecord) string { return itoa64(r.TotalNS) }},
	{"s1_lp_solves", func(r *SlotRecord) string { return itoa(r.S1LPSolves) }},
	{"s1_lp_iters", func(r *SlotRecord) string { return itoa(r.S1LPIters) }},
	{"s4_lp_solves", func(r *SlotRecord) string { return itoa(r.S4LPSolves) }},
	{"s4_lp_iters", func(r *SlotRecord) string { return itoa(r.S4LPIters) }},
	{"s1_objective", func(r *SlotRecord) string { return ftoa(r.S1Objective) }},
	{"s1_relaxed_objective", func(r *SlotRecord) string {
		if r.S1RelaxedObjective == nil {
			return ""
		}
		return ftoa(*r.S1RelaxedObjective)
	}},
	{"scheduled_links", func(r *SlotRecord) string { return itoa(r.ScheduledLinks) }},
	{"offered_pkts", func(r *SlotRecord) string { return ftoa(r.OfferedPkts) }},
	{"admitted_pkts", func(r *SlotRecord) string { return ftoa(r.AdmittedPkts) }},
	{"dropped_pkts", func(r *SlotRecord) string { return ftoa(r.DroppedPkts) }},
	{"delivered_pkts", func(r *SlotRecord) string { return ftoa(r.DeliveredPkts) }},
	{"data_backlog_bs", func(r *SlotRecord) string { return ftoa(r.DataBacklogBS) }},
	{"data_backlog_users", func(r *SlotRecord) string { return ftoa(r.DataBacklogUsers) }},
	{"virtual_backlog_h", func(r *SlotRecord) string { return ftoa(r.VirtualBacklogH) }},
	{"shifted_abs_z", func(r *SlotRecord) string { return ftoa(r.ShiftedAbsZ) }},
	{"battery_wh_bs", func(r *SlotRecord) string { return ftoa(r.BatteryWhBS) }},
	{"battery_wh_users", func(r *SlotRecord) string { return ftoa(r.BatteryWhUsers) }},
	{"grid_wh", func(r *SlotRecord) string { return ftoa(r.GridWh) }},
	{"energy_cost", func(r *SlotRecord) string { return ftoa(r.EnergyCost) }},
	{"penalty_objective", func(r *SlotRecord) string { return ftoa(r.PenaltyObjective) }},
	{"marginal_price_wh", func(r *SlotRecord) string { return ftoa(r.MarginalPriceWh) }},
	{"renewable_wh", func(r *SlotRecord) string { return ftoa(r.RenewableWh) }},
	{"demand_wh", func(r *SlotRecord) string { return ftoa(r.DemandWh) }},
	{"tx_energy_wh", func(r *SlotRecord) string { return ftoa(r.TxEnergyWh) }},
	{"deficit_wh", func(r *SlotRecord) string { return ftoa(r.DeficitWh) }},
	{"degraded", func(r *SlotRecord) string { return itoa(r.Degraded) }},
	{"degraded_causes", func(r *SlotRecord) string { return r.DegradedCauses }},
}

func itoa(v int) string     { return fmt.Sprintf("%d", v) }
func itoa64(v int64) string { return fmt.Sprintf("%d", v) }
func ftoa(v float64) string { return fmt.Sprintf("%g", v) }

// CanonicalizeJSONL rewrites a JSON-Lines metrics stream into a canonical
// form for determinism comparisons: every numeric field whose key contains
// "_ns" (the wall-clock timings, including summary aggregates like
// "stage_s1_ns_p95") is zeroed, and object keys are re-serialized sorted.
// Two runs of the same scenario and seed must canonicalize byte-identically
// — the regression test in internal/sim enforces it.
func CanonicalizeJSONL(data []byte) ([]byte, error) {
	var out bytes.Buffer
	for i, line := range bytes.Split(data, []byte("\n")) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal(line, &obj); err != nil {
			return nil, fmt.Errorf("metrics: canonicalize line %d: %w", i+1, err)
		}
		zeroTimings(obj)
		enc, err := json.Marshal(obj) // map keys marshal sorted
		if err != nil {
			return nil, err
		}
		out.Write(enc)
		out.WriteByte('\n')
	}
	return out.Bytes(), nil
}

// zeroTimings recursively zeroes numeric values under keys containing
// "_ns". It walks the keys in sorted order: updating a map mid-range is
// defined for existing keys, but a deterministic canonicalizer should not
// lean on that subtlety (and the mapiter analyzer flags it).
func zeroTimings(obj map[string]any) {
	keys := make([]string, 0, len(obj))
	for k := range obj {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		switch vv := obj[k].(type) {
		case map[string]any:
			zeroTimings(vv)
		default:
			if strings.Contains(k, "_ns") {
				if _, isNum := vv.(float64); isNum {
					obj[k] = 0.0
				}
			}
		}
	}
}
