// Package metrics is the per-slot observability layer of the drift-plus-
// penalty control loop: a lightweight, allocation-conscious registry of
// counters, gauges, and streaming histograms (p50/p95/p99 over fixed
// buckets), plus the versioned record schema (Header, SlotRecord, Summary)
// that the simulator emits as JSON Lines or CSV.
//
// Design constraints, in order:
//
//  1. Zero overhead when off: nothing in this package is consulted unless
//     the caller opted in (core.Config.Instrument, cmd -metrics flags).
//  2. No allocation on the hot path: metric handles are obtained once at
//     registration; Observe/Add/Set touch only pre-sized arrays.
//  3. Deterministic emission: records serialize with a fixed field order,
//     and every wall-clock-dependent field name contains "_ns" so
//     CanonicalizeJSONL can zero them for byte-identical-by-seed
//     comparisons (the regression test in internal/sim relies on this).
//
// The full schema is documented in docs/METRICS.md; SchemaVersion tracks
// it and must be bumped whenever a field is added, removed, or reunited.
package metrics

import (
	"fmt"
	"sort"
	"time"
)

// Counter is a monotonically accumulating value (packets, solves, …).
// Not safe for concurrent use; each simulation run owns its registry.
type Counter struct {
	v float64
}

// Add accumulates d (negative deltas are permitted but unconventional).
func (c *Counter) Add(d float64) { c.v += d }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Value returns the accumulated total.
func (c *Counter) Value() float64 { return c.v }

// Gauge is a last-value-wins instantaneous measurement (a queue backlog,
// a battery level).
type Gauge struct {
	v   float64
	set bool
}

// Set records the current value.
func (g *Gauge) Set(v float64) { g.v, g.set = v, true }

// Value returns the last recorded value (0 before any Set).
func (g *Gauge) Value() float64 { return g.v }

// Timer records durations into a histogram, in nanoseconds.
type Timer struct {
	h *Histogram
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) { t.h.Observe(float64(d.Nanoseconds())) }

// ObserveNS records one duration given in nanoseconds.
func (t *Timer) ObserveNS(ns int64) { t.h.Observe(float64(ns)) }

// Histogram exposes the timer's underlying distribution.
func (t *Timer) Histogram() *Histogram { return t.h }

// kind discriminates registered metrics in snapshots.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindTimer
)

type entry struct {
	name string
	unit string
	help string
	kind kind

	c *Counter
	g *Gauge
	h *Histogram
	t *Timer
}

// Registry holds named metrics in registration order. Handles returned by
// the registration methods are stable for the registry's lifetime, so hot
// paths never look anything up by name. Registering a name twice returns
// the existing handle (the kind must match; mismatches panic, as they are
// programming errors).
type Registry struct {
	entries []entry
	index   map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]int)}
}

func (r *Registry) lookup(name string, k kind) (int, bool) {
	i, ok := r.index[name]
	if !ok {
		return -1, false
	}
	if r.entries[i].kind != k {
		panic(fmt.Sprintf("metrics: %q re-registered as a different kind", name))
	}
	return i, true
}

// Counter registers (or retrieves) a counter.
func (r *Registry) Counter(name, unit, help string) *Counter {
	if i, ok := r.lookup(name, kindCounter); ok {
		return r.entries[i].c
	}
	c := &Counter{}
	r.index[name] = len(r.entries)
	r.entries = append(r.entries, entry{name: name, unit: unit, help: help, kind: kindCounter, c: c})
	return c
}

// Gauge registers (or retrieves) a gauge.
func (r *Registry) Gauge(name, unit, help string) *Gauge {
	if i, ok := r.lookup(name, kindGauge); ok {
		return r.entries[i].g
	}
	g := &Gauge{}
	r.index[name] = len(r.entries)
	r.entries = append(r.entries, entry{name: name, unit: unit, help: help, kind: kindGauge, g: g})
	return g
}

// Histogram registers (or retrieves) a histogram over the given bucket
// upper bounds (see NewHistogram for the bound contract).
func (r *Registry) Histogram(name, unit, help string, bounds []float64) *Histogram {
	if i, ok := r.lookup(name, kindHistogram); ok {
		return r.entries[i].h
	}
	h := NewHistogram(bounds)
	r.index[name] = len(r.entries)
	r.entries = append(r.entries, entry{name: name, unit: unit, help: help, kind: kindHistogram, h: h})
	return h
}

// Timer registers (or retrieves) a per-stage timer: a histogram of
// nanosecond durations over log-spaced buckets from 1µs to ~17s.
func (r *Registry) Timer(name, help string) *Timer {
	if i, ok := r.lookup(name, kindTimer); ok {
		return r.entries[i].t
	}
	t := &Timer{h: NewHistogram(TimingBuckets())}
	r.index[name] = len(r.entries)
	r.entries = append(r.entries, entry{name: name, unit: "ns", help: help, kind: kindTimer, t: t})
	return t
}

// Snapshot flattens every registered metric into a name → value map with
// the conventions of docs/METRICS.md: counters and gauges map to their
// name; histograms and timers expand into <name>_count, <name>_mean,
// <name>_p50, <name>_p95, <name>_p99, and <name>_max. Map emission is
// deterministic because JSON marshalling sorts keys.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64, len(r.entries)*6)
	for _, e := range r.entries {
		switch e.kind {
		case kindCounter:
			out[e.name] = e.c.Value()
		case kindGauge:
			out[e.name] = e.g.Value()
		case kindHistogram, kindTimer:
			h := e.h
			if e.kind == kindTimer {
				h = e.t.h
			}
			out[e.name+"_count"] = float64(h.Count())
			out[e.name+"_mean"] = h.Mean()
			out[e.name+"_p50"] = h.Quantile(0.50)
			out[e.name+"_p95"] = h.Quantile(0.95)
			out[e.name+"_p99"] = h.Quantile(0.99)
			out[e.name+"_max"] = h.Max()
		}
	}
	return out
}

// CounterValues returns the value of every registered counter, keyed by
// name. This is the cross-run aggregation unit: greencelld folds the
// counters of each completed instrumented run into its serving-level
// registry (histogram quantiles do not sum and are left per-run).
func (r *Registry) CounterValues() map[string]float64 {
	out := make(map[string]float64)
	for _, e := range r.entries {
		if e.kind == kindCounter {
			out[e.name] = e.c.Value()
		}
	}
	return out
}

// EachCounter visits every registered counter in registration order with
// its full metadata — the variant of CounterValues used when the
// aggregating registry needs to re-register the counters under their
// original unit and help text.
func (r *Registry) EachCounter(f func(name, unit, help string, value float64)) {
	for _, e := range r.entries {
		if e.kind == kindCounter {
			f(e.name, e.unit, e.help, e.c.Value())
		}
	}
}

// Names returns the registered metric names in registration order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.name
	}
	return out
}

// Describe returns "name (unit): help" lines sorted by name — the
// self-documentation hook behind `greencellsim -metrics-help`-style
// tooling and the docs/METRICS.md cross-check test.
func (r *Registry) Describe() []string {
	out := make([]string, 0, len(r.entries))
	for _, e := range r.entries {
		unit := e.unit
		if unit == "" {
			unit = "1"
		}
		out = append(out, fmt.Sprintf("%s (%s): %s", e.name, unit, e.help))
	}
	sort.Strings(out)
	return out
}
