package metrics

import (
	"math"
	"sort"
)

// Histogram is a fixed-bucket streaming histogram: O(#buckets) memory,
// O(log #buckets) per observation, no allocation after construction, and
// deterministic (unlike reservoir sampling) — the property the
// byte-identical-emission regression test depends on. Quantiles are
// estimated by linear interpolation inside the owning bucket, so their
// error is bounded by the bucket width at that rank; with the default
// log-spaced timing buckets (×1.5 growth) relative error stays under ~25%,
// ample for "where does slot time go" questions.
type Histogram struct {
	// bounds are strictly increasing bucket upper bounds; an implicit
	// overflow bucket catches values above the last bound.
	bounds []float64
	counts []uint64

	n        uint64
	sum      float64
	min, max float64
}

// NewHistogram builds a histogram over the given strictly increasing
// bucket upper bounds. The slice is copied. Panics on empty or unsorted
// bounds (a programming error).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly increasing")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{
		bounds: b,
		counts: make([]uint64, len(bounds)+1), // +1 overflow
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// ExpBuckets returns n upper bounds starting at lo and growing by the
// given factor: lo, lo·growth, lo·growth², …
func ExpBuckets(lo, growth float64, n int) []float64 {
	if lo <= 0 || growth <= 1 || n <= 0 {
		panic("metrics: ExpBuckets needs lo > 0, growth > 1, n > 0")
	}
	out := make([]float64, n)
	v := lo
	for i := range out {
		out[i] = v
		v *= growth
	}
	return out
}

// LinearBuckets returns n upper bounds lo, lo+step, lo+2·step, …
func LinearBuckets(lo, step float64, n int) []float64 {
	if step <= 0 || n <= 0 {
		panic("metrics: LinearBuckets needs step > 0, n > 0")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}

// TimingBuckets returns the default duration buckets in nanoseconds:
// 1µs·1.5^k for 40 buckets, covering ~1µs to ~17s.
func TimingBuckets() []float64 { return ExpBuckets(1e3, 1.5, 40) }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.n++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the total of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the exact mean of the observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() float64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by locating the bucket
// holding the target rank and interpolating linearly inside it. The
// overflow bucket reports the exact observed maximum; q outside [0,1] is
// clamped. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	rank := q * float64(h.n)
	cum := 0.0
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			lo, hi := h.bucketRange(i)
			// Clamp interpolation to the observed extremes so sparse
			// tails don't report values outside the data.
			frac := (rank - cum) / float64(c)
			v := lo + frac*(hi-lo)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum = next
	}
	return h.Max()
}

// bucketRange returns bucket i's [lo, hi] value range, using observed
// extremes for the open-ended first and overflow buckets.
func (h *Histogram) bucketRange(i int) (lo, hi float64) {
	switch {
	case i == 0:
		return math.Min(h.min, h.bounds[0]), h.bounds[0]
	case i == len(h.bounds):
		return h.bounds[len(h.bounds)-1], h.max
	default:
		return h.bounds[i-1], h.bounds[i]
	}
}
