package metrics

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every metric of reg in the Prometheus text
// exposition format (version 0.0.4), sorted by metric name so the output
// is deterministic for a fixed registry state:
//
//   - counters emit `# HELP`, `# TYPE <name> counter`, and one sample;
//   - gauges likewise with `# TYPE <name> gauge`;
//   - histograms and timers emit a summary family: quantile samples at
//     0.5/0.95/0.99 plus `<name>_sum` and `<name>_count`.
//
// The registered unit is appended to the HELP text in brackets. Registry
// is not safe for concurrent use; the caller serializes WritePrometheus
// against writers of the same registry (greencelld holds its server mutex).
func WritePrometheus(w io.Writer, reg *Registry) error {
	sw := &stickyWriter{bw: bufio.NewWriter(w)}
	entries := make([]entry, len(reg.entries))
	copy(entries, reg.entries)
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	for _, e := range entries {
		help := e.help
		if e.unit != "" {
			help += " [" + e.unit + "]"
		}
		sw.line("# HELP ", e.name, " ", escapeHelp(help))
		switch e.kind {
		case kindCounter:
			sw.line("# TYPE ", e.name, " counter")
			sw.line(e.name, " ", promFloat(e.c.Value()))
		case kindGauge:
			sw.line("# TYPE ", e.name, " gauge")
			sw.line(e.name, " ", promFloat(e.g.Value()))
		case kindHistogram, kindTimer:
			h := e.h
			if e.kind == kindTimer {
				h = e.t.h
			}
			sw.line("# TYPE ", e.name, " summary")
			for _, q := range [...]float64{0.5, 0.95, 0.99} {
				sw.line(e.name, `{quantile="`, promFloat(q), `"} `, promFloat(h.Quantile(q)))
			}
			sw.line(e.name, "_sum ", promFloat(h.Sum()))
			sw.line(e.name, "_count ", strconv.FormatUint(h.Count(), 10))
		}
	}
	if sw.err != nil {
		return sw.err
	}
	return sw.bw.Flush()
}

// stickyWriter keeps the first write error and drops everything after it,
// so the emission loop stays linear instead of threading an error through
// every sample line.
type stickyWriter struct {
	bw  *bufio.Writer
	err error
}

// line writes the concatenation of parts followed by a newline.
func (s *stickyWriter) line(parts ...string) {
	if s.err != nil {
		return
	}
	for _, p := range parts {
		if _, s.err = s.bw.WriteString(p); s.err != nil {
			return
		}
	}
	s.err = s.bw.WriteByte('\n')
}

// promFloat renders a sample value per the exposition format: shortest
// round-trip representation, with the spec spellings for the non-finite
// values.
func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
