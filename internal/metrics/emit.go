package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// RecordWriter receives the three record kinds of a metrics stream, in
// order: exactly one Header, then SlotRecords, then exactly one Summary.
// Close flushes buffered output (it does not close the underlying stream).
type RecordWriter interface {
	WriteHeader(Header) error
	WriteSlot(*SlotRecord) error
	WriteSummary(Summary) error
	Close() error
}

// JSONLWriter emits the stream as JSON Lines: one self-describing JSON
// object per line, discriminated by its "type" field.
type JSONLWriter struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewJSONLWriter wraps w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	bw := bufio.NewWriter(w)
	return &JSONLWriter{bw: bw, enc: json.NewEncoder(bw)}
}

// WriteHeader implements RecordWriter.
func (w *JSONLWriter) WriteHeader(h Header) error { return w.enc.Encode(NewHeader(h)) }

// WriteSlot implements RecordWriter.
func (w *JSONLWriter) WriteSlot(r *SlotRecord) error {
	r.Type = "slot"
	return w.enc.Encode(r)
}

// WriteSummary implements RecordWriter.
func (w *JSONLWriter) WriteSummary(s Summary) error {
	s.Type = "summary"
	return w.enc.Encode(s)
}

// Close implements RecordWriter.
func (w *JSONLWriter) Close() error { return w.bw.Flush() }

// CSVWriter emits slot records as comma-separated rows under a fixed
// column header (SlotFieldNames order). The stream header and summary are
// written as "# key=value" comment lines so the file stays loadable by
// comment-aware CSV readers (pandas: comment='#').
type CSVWriter struct {
	bw          *bufio.Writer
	wroteHeader bool
}

// NewCSVWriter wraps w.
func NewCSVWriter(w io.Writer) *CSVWriter {
	return &CSVWriter{bw: bufio.NewWriter(w)}
}

// WriteHeader implements RecordWriter.
func (w *CSVWriter) WriteHeader(h Header) error {
	h = NewHeader(h)
	_, err := fmt.Fprintf(w.bw,
		"# schema=%s version=%d scenario=%s architecture=%q scheduler=%s v=%g lambda=%g slot_seconds=%g slots=%d seed=%d sessions=%d users=%d\n",
		h.Schema, h.Version, h.Scenario, h.Architecture, h.Scheduler,
		h.V, h.Lambda, h.SlotSeconds, h.Slots, h.Seed, h.Sessions, h.Users)
	return err
}

// WriteSlot implements RecordWriter.
func (w *CSVWriter) WriteSlot(r *SlotRecord) error {
	if !w.wroteHeader {
		if _, err := fmt.Fprintln(w.bw, strings.Join(SlotFieldNames(), ",")); err != nil {
			return err
		}
		w.wroteHeader = true
	}
	for i, c := range slotColumns {
		if i > 0 {
			if err := w.bw.WriteByte(','); err != nil {
				return err
			}
		}
		if _, err := w.bw.WriteString(c.get(r)); err != nil {
			return err
		}
	}
	return w.bw.WriteByte('\n')
}

// WriteSummary implements RecordWriter. Keys are emitted sorted (one
// comment line per metric) for deterministic output.
func (w *CSVWriter) WriteSummary(s Summary) error {
	if _, err := fmt.Fprintf(w.bw, "# summary slots=%d\n", s.Slots); err != nil {
		return err
	}
	enc, err := json.Marshal(s.Metrics) // sorted keys
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w.bw, "# summary_metrics=%s\n", enc)
	return err
}

// Close implements RecordWriter.
func (w *CSVWriter) Close() error { return w.bw.Flush() }

// MultiWriter fans records out to several writers (e.g. JSONL + CSV).
type MultiWriter []RecordWriter

// WriteHeader implements RecordWriter.
func (m MultiWriter) WriteHeader(h Header) error {
	for _, w := range m {
		if err := w.WriteHeader(h); err != nil {
			return err
		}
	}
	return nil
}

// WriteSlot implements RecordWriter.
func (m MultiWriter) WriteSlot(r *SlotRecord) error {
	for _, w := range m {
		if err := w.WriteSlot(r); err != nil {
			return err
		}
	}
	return nil
}

// WriteSummary implements RecordWriter.
func (m MultiWriter) WriteSummary(s Summary) error {
	for _, w := range m {
		if err := w.WriteSummary(s); err != nil {
			return err
		}
	}
	return nil
}

// Close implements RecordWriter, closing every writer and returning the
// first error.
func (m MultiWriter) Close() error {
	var first error
	for _, w := range m {
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ReadAllSlots parses a JSONL metrics stream and returns its slot records,
// skipping header and summary lines — the offline-analysis counterpart of
// JSONLWriter.
func ReadAllSlots(r io.Reader) ([]SlotRecord, error) {
	dec := json.NewDecoder(r)
	var out []SlotRecord
	for dec.More() {
		var probe struct {
			Type string `json:"type"`
		}
		raw := json.RawMessage{}
		if err := dec.Decode(&raw); err != nil {
			return nil, fmt.Errorf("metrics: record %d: %w", len(out), err)
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return nil, fmt.Errorf("metrics: record %d: %w", len(out), err)
		}
		if probe.Type != "slot" {
			continue
		}
		var rec SlotRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("metrics: record %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
	return out, nil
}
