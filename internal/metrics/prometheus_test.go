package metrics

import (
	"bytes"
	"strings"
	"testing"
)

// TestWritePrometheusFormat pins the exposition format: deterministic
// name-sorted order, HELP/TYPE lines, counter and gauge samples, and the
// summary expansion of histograms. Any change here is a wire-format change
// and must be deliberate.
func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	// Register out of name order to prove the emission sorts.
	reg.Gauge("queue_depth", "jobs", "jobs waiting to run").Set(3)
	c := reg.Counter("jobs_done_total", "jobs", "jobs finished successfully")
	c.Add(41)
	c.Inc()
	h := reg.Histogram("batch_pkts", "pkts", "packets per batch", []float64{1, 10, 100})
	h.Observe(5)
	h.Observe(5)
	h.Observe(5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := strings.Join([]string{
		`# HELP batch_pkts packets per batch [pkts]`,
		`# TYPE batch_pkts summary`,
		`batch_pkts{quantile="0.5"} 5`,
		`batch_pkts{quantile="0.95"} 5`,
		`batch_pkts{quantile="0.99"} 5`,
		`batch_pkts_sum 20`,
		`batch_pkts_count 4`,
		`# HELP jobs_done_total jobs finished successfully [jobs]`,
		`# TYPE jobs_done_total counter`,
		`jobs_done_total 42`,
		`# HELP queue_depth jobs waiting to run [jobs]`,
		`# TYPE queue_depth gauge`,
		`queue_depth 3`,
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("exposition format changed:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestWritePrometheusDeterministic: two renderings of the same registry
// are byte-identical, and timers expose summaries too.
func TestWritePrometheusDeterministic(t *testing.T) {
	reg := NewRegistry()
	reg.Timer("solve_ns", "one solve wall time").ObserveNS(1500)
	reg.Counter("slots_total", "slots", "slots recorded").Add(7)

	var a, b bytes.Buffer
	if err := WritePrometheus(&a, reg); err != nil {
		t.Fatalf("first render: %v", err)
	}
	if err := WritePrometheus(&b, reg); err != nil {
		t.Fatalf("second render: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same registry rendered differently across calls")
	}
	out := a.String()
	for _, needle := range []string{
		"# TYPE solve_ns summary",
		"solve_ns_count 1",
		"solve_ns_sum 1500",
		"# TYPE slots_total counter",
		"slots_total 7",
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("exposition missing %q:\n%s", needle, out)
		}
	}
}

// TestCounterValues: only counters appear, keyed by name.
func TestCounterValues(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "1", "a").Add(2)
	reg.Gauge("g", "1", "g").Set(9)
	reg.Timer("t_ns", "t").ObserveNS(5)
	got := reg.CounterValues()
	if len(got) != 1 || got["a_total"] != 2 {
		t.Fatalf("CounterValues = %v, want map[a_total:2]", got)
	}
}
