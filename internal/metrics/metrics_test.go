package metrics

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestRegistryHandlesAndSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("admitted_pkts_total", "packets", "total admitted")
	g := r.Gauge("battery_wh", "Wh", "battery level")
	h := r.Histogram("backlog", "packets", "per-slot backlog", LinearBuckets(10, 10, 10))
	tm := r.Timer("stage_s1_ns", "S1 solve time")

	c.Add(3)
	c.Inc()
	g.Set(7.5)
	h.Observe(25)
	tm.Observe(2 * time.Millisecond)
	tm.ObserveNS(3e6)

	// Re-registration returns the same handle.
	if r.Counter("admitted_pkts_total", "packets", "total admitted") != c {
		t.Error("re-registering a counter must return the existing handle")
	}

	snap := r.Snapshot()
	if snap["admitted_pkts_total"] != 4 {
		t.Errorf("counter = %g, want 4", snap["admitted_pkts_total"])
	}
	if snap["battery_wh"] != 7.5 {
		t.Errorf("gauge = %g, want 7.5", snap["battery_wh"])
	}
	if snap["backlog_count"] != 1 {
		t.Errorf("histogram count = %g, want 1", snap["backlog_count"])
	}
	if snap["stage_s1_ns_count"] != 2 {
		t.Errorf("timer count = %g, want 2", snap["stage_s1_ns_count"])
	}
	if p99 := snap["stage_s1_ns_p99"]; p99 < 2e6 || p99 > 4e6 {
		t.Errorf("timer p99 = %g, want within [2e6, 4e6]", p99)
	}

	names := r.Names()
	wantOrder := []string{"admitted_pkts_total", "battery_wh", "backlog", "stage_s1_ns"}
	for i, w := range wantOrder {
		if names[i] != w {
			t.Fatalf("Names() = %v, want prefix %v", names, wantOrder)
		}
	}
	if len(r.Describe()) != 4 {
		t.Errorf("Describe() has %d lines, want 4", len(r.Describe()))
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on kind mismatch")
		}
	}()
	r := NewRegistry()
	r.Counter("x", "", "")
	r.Gauge("x", "", "")
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	if err := w.WriteHeader(Header{Scenario: "paper", Seed: 1, Slots: 2, V: 1e5}); err != nil {
		t.Fatal(err)
	}
	relaxed := 123.0
	for i := 0; i < 2; i++ {
		rec := &SlotRecord{Slot: i, S1NS: 5000, AdmittedPkts: 100, GridWh: 1.5}
		if i == 1 {
			rec.S1RelaxedObjective = &relaxed
		}
		if err := w.WriteSlot(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.WriteSummary(Summary{Slots: 2, Metrics: map[string]float64{"stage_s1_ns_p50": 5000}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	out := buf.String()
	if !strings.Contains(out, `"schema":"greencell.metrics"`) ||
		!strings.Contains(out, fmt.Sprintf(`"version":%d`, SchemaVersion)) {
		t.Errorf("header line missing schema identity:\n%s", out)
	}
	slots, err := ReadAllSlots(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 2 {
		t.Fatalf("ReadAllSlots returned %d records, want 2", len(slots))
	}
	if slots[0].AdmittedPkts != 100 || slots[1].S1RelaxedObjective == nil ||
		*slots[1].S1RelaxedObjective != 123 {
		t.Errorf("round-trip mismatch: %+v", slots)
	}
}

func TestCSVWriterShape(t *testing.T) {
	var buf bytes.Buffer
	w := NewCSVWriter(&buf)
	if err := w.WriteHeader(Header{Scenario: "paper"}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSlot(&SlotRecord{Slot: 0, GridWh: 2.25}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSummary(Summary{Slots: 1, Metrics: map[string]float64{"a": 1}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// comment header, column header, 1 row, 2 summary comments.
	if len(lines) != 5 {
		t.Fatalf("CSV has %d lines, want 5:\n%s", len(lines), buf.String())
	}
	cols := strings.Split(lines[1], ",")
	if len(cols) != len(SlotFieldNames()) {
		t.Errorf("column header has %d fields, want %d", len(cols), len(SlotFieldNames()))
	}
	row := strings.Split(lines[2], ",")
	if len(row) != len(cols) {
		t.Errorf("data row has %d fields, want %d", len(row), len(cols))
	}
}

func TestCanonicalizeJSONLZeroesTimings(t *testing.T) {
	in := []byte(`{"type":"slot","slot":0,"s1_ns":12345,"grid_wh":1.5}
{"type":"summary","metrics":{"stage_s1_ns_p95":777,"admitted_pkts_total":4}}
`)
	got, err := CanonicalizeJSONL(in)
	if err != nil {
		t.Fatal(err)
	}
	s := string(got)
	if strings.Contains(s, "12345") || strings.Contains(s, "777") {
		t.Errorf("timing values survived canonicalization:\n%s", s)
	}
	if !strings.Contains(s, "1.5") || !strings.Contains(s, `"admitted_pkts_total":4`) {
		t.Errorf("non-timing values must survive:\n%s", s)
	}

	// Canonical form is independent of timing values.
	in2 := []byte(`{"type":"slot","slot":0,"s1_ns":999,"grid_wh":1.5}
{"type":"summary","metrics":{"stage_s1_ns_p95":1,"admitted_pkts_total":4}}
`)
	got2, err := CanonicalizeJSONL(in2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, got2) {
		t.Errorf("canonical forms differ:\n%s\nvs\n%s", got, got2)
	}
}
