package metrics

import (
	"math"
	"testing"
)

// TestHistogramQuantileAccuracy checks the interpolated quantiles against
// the exact order statistics of a known sample: 10_000 evenly spaced
// values observed in a scrambled order. With linear buckets of width 100
// over [0, 10_000], interpolation error must stay below one bucket width.
func TestHistogramQuantileAccuracy(t *testing.T) {
	const n = 10000
	const bucketWidth = 100.0
	h := NewHistogram(LinearBuckets(bucketWidth, bucketWidth, 100))

	// Deterministic scramble: stride through the range with a coprime step.
	for i := 0; i < n; i++ {
		v := float64((i*7919)%n) + 0.5 // 0.5, 1.5, …, 9999.5 in scrambled order
		h.Observe(v)
	}

	for _, q := range []float64{0.01, 0.25, 0.50, 0.90, 0.95, 0.99} {
		exact := q * n // the q-quantile of uniform 0.5..n-0.5 is ~q·n
		got := h.Quantile(q)
		if d := math.Abs(got - exact); d > bucketWidth {
			t.Errorf("Quantile(%.2f) = %.1f, want %.1f ± %.0f (off by %.1f)",
				q, got, exact, bucketWidth, d)
		}
	}
	if got := h.Quantile(0); got != h.Min() {
		t.Errorf("Quantile(0) = %g, want min %g", got, h.Min())
	}
	if got := h.Quantile(1); got != h.Max() {
		t.Errorf("Quantile(1) = %g, want max %g", got, h.Max())
	}
	if mean := h.Mean(); math.Abs(mean-n/2) > 1 {
		t.Errorf("Mean = %g, want ~%d", mean, n/2)
	}
}

// TestHistogramQuantileExponentialBuckets checks relative accuracy on the
// log-spaced timing buckets: quantile estimates of a known geometric
// sample must stay within one bucket growth factor of the truth.
func TestHistogramQuantileExponentialBuckets(t *testing.T) {
	h := NewHistogram(TimingBuckets())
	// 1000 log-uniform values between 10µs and 100ms (in ns).
	const n = 1000
	lo, hi := math.Log(1e4), math.Log(1e8)
	for i := 0; i < n; i++ {
		u := float64((i*389)%n) / float64(n)
		h.Observe(math.Exp(lo + u*(hi-lo)))
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		exact := math.Exp(lo + q*(hi-lo))
		got := h.Quantile(q)
		if got < exact/1.5 || got > exact*1.5 {
			t.Errorf("Quantile(%.2f) = %.3g, want %.3g within ×1.5", q, got, exact)
		}
	}
}

func TestHistogramEmptyAndSingle(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram must report zeros")
	}
	h.Observe(3)
	if got := h.Quantile(0.5); got != 3 {
		t.Errorf("single-observation p50 = %g, want 3 (clamped to observed range)", got)
	}
	if h.Count() != 1 || h.Min() != 3 || h.Max() != 3 {
		t.Errorf("count/min/max = %d/%g/%g, want 1/3/3", h.Count(), h.Min(), h.Max())
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{10})
	h.Observe(5)
	h.Observe(1e6) // overflow
	if got := h.Quantile(1); got != 1e6 {
		t.Errorf("max quantile = %g, want exact observed max 1e6", got)
	}
	if h.Count() != 2 {
		t.Errorf("count = %d, want 2", h.Count())
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if exp[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", exp, want)
		}
	}
	lin := LinearBuckets(10, 5, 3)
	wantLin := []float64{10, 15, 20}
	for i := range wantLin {
		if lin[i] != wantLin[i] {
			t.Fatalf("LinearBuckets = %v, want %v", lin, wantLin)
		}
	}
	tb := TimingBuckets()
	if len(tb) != 40 || tb[0] != 1e3 {
		t.Fatalf("TimingBuckets: len %d first %g", len(tb), tb[0])
	}
}
