// Package sched solves the paper's per-slot link-scheduling subproblem S1:
// choose the binary assignments α_ij^m(t) maximizing the virtual-queue
// weighted service Σ H_ij · Σ_m c_ij^m · α_ij^m subject to the single-radio
// constraint (22) and the big-M SINR constraint (24).
//
// Three solvers are provided:
//
//   - SequentialFix: the paper's SF heuristic — iteratively solve the LP
//     relaxation and round/fix variables until all are integral.
//   - Greedy: a fast weight-ordered insertion heuristic (ablation baseline
//     and large-scenario fallback).
//   - Exact: LP-based branch and bound (reference optimum for tests and
//     ablations on small instances).
//
// All three produce assignments that are feasible under (22) and under the
// Physical Model: transmission powers are finalized by Foschini–Miljanic
// power control, dropping links (lowest weight first) in the rare case the
// fixed schedule turns out SINR-infeasible.
//
// A fourth solver, Relaxed, returns the fractional LP optimum directly:
// it is the scheduling stage of the relaxed problem P3̄ behind the
// Theorem 5 lower bound, and doubles as the per-slot optimality
// certificate of the metrics layer (Instrumented.CompareRelaxed records
// relaxation − heuristic gaps; see docs/METRICS.md).
package sched

import (
	"cmp"
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"

	"greencell/internal/bip"
	"greencell/internal/lp"
	"greencell/internal/radio"
	"greencell/internal/topology"
)

// Request is one slot's scheduling problem.
type Request struct {
	Net *topology.Network
	// Widths is W_m(t) per band, in Hz.
	Widths []float64
	// Weights is H_ij(t) per candidate link; non-positive entries exclude
	// the link from scheduling (the paper fixes α=0 when H_ij = 0).
	Weights []float64
	// TxPowerCap optionally lowers each node's transmit power below
	// P_i^max (nil = use P_i^max). The controller uses it to keep nodes
	// whose available energy cannot cover a transmission out of the
	// schedule.
	TxPowerCap []float64
	// MaxLPIterations, when positive, caps the total simplex iterations of
	// each LP solve this request triggers (lp.Problem.SetIterationLimit).
	// An exhausted budget surfaces as an error wrapping ErrIterationLimit,
	// on which the controller falls back to the idle safe action
	// (docs/ROBUSTNESS.md).
	MaxLPIterations int
	// Warm, when non-nil, lets the LP-backed strategies (SequentialFix,
	// Relaxed) warm-start their solves from the previous fixing round and
	// the previous slot's exported basis, and records the next basis back
	// into it. nil (the default) keeps the cold path bit-identical to the
	// golden fixture. See WarmState and docs/PERFORMANCE.md.
	Warm *WarmState
}

func (r *Request) maxPower(node int) float64 {
	p := r.Net.MaxTxPower(node).Watts()
	if r.TxPowerCap != nil && r.TxPowerCap[node] < p {
		p = r.TxPowerCap[node]
	}
	return p
}

// SolveStats reports the optimization work behind one assignment, for the
// metrics layer (docs/METRICS.md): how many simplex solves the strategy
// issued and how many simplex iterations they took in total. Greedy issues
// none; SequentialFix one LP per fixing round; Exact one per
// branch-and-bound node; Relaxed exactly one.
type SolveStats struct {
	LPSolves     int
	LPIterations int
	// WarmStarts counts LP solves that reused a prior basis; and
	// BasisInvalidations counts prior bases discarded for a cold rebuild
	// (structure change or failed reuse). Both stay zero unless the
	// request carried a WarmState (lp_warm_starts_total /
	// lp_basis_invalidations_total in docs/METRICS.md).
	WarmStarts         int
	BasisInvalidations int
}

// Assignment is the outcome of scheduling one slot.
type Assignment struct {
	// LinkBand[l] is the band link l transmits on, -1 if unscheduled or
	// fractional (Relaxed scheduler).
	LinkBand []int
	// PowerW[l] is link l's (activity-weighted) transmit power in W.
	PowerW []float64
	// RateBits[l] is link l's capacity in bits/s (activity-weighted for
	// fractional schedules).
	RateBits []float64
	// Activity[l] is the link's duty in [0,1]: Σ_m α_l^m. Integral
	// schedulers produce exactly 0 or 1; the Relaxed scheduler fractions.
	// It weights the receiver's energy draw in eq. (23).
	Activity []float64
	// Stats reports the LP work spent producing this assignment.
	Stats SolveStats
}

// Scheduled reports whether link l is active.
func (a *Assignment) Scheduled(l int) bool { return a.LinkBand[l] >= 0 }

// Objective returns Σ_l weight_l · rate_l, the (scaled) value of the
// paper's Ψ̂1 that all three solvers maximize. It is the comparison metric
// used by tests, ablations, and the metrics layer. RateBits is already
// activity-weighted, so the sum is valid for fractional (Relaxed)
// schedules too, whose LinkBand entries are all -1.
func (a *Assignment) Objective(weights []float64) float64 {
	sum := 0.0
	for l, r := range a.RateBits {
		sum += weights[l] * r
	}
	return sum
}

// Scheduler is a solver for S1.
type Scheduler interface {
	Schedule(req *Request) (*Assignment, error)
}

// ErrRequest reports an invalid scheduling request.
var ErrRequest = errors.New("sched: invalid request")

// Typed solver-outcome sentinels. They classify how a structurally valid
// solve failed, so callers (the controller's degradation path) can branch
// with errors.Is instead of matching message strings. ErrRequest, by
// contrast, is a caller bug and is not a degradation trigger.
var (
	// ErrInfeasible reports that a solve ended infeasible (or otherwise
	// failed to reach an optimum). The all-zeros schedule is always
	// feasible for S1, so organically this indicates numerical trouble.
	ErrInfeasible = errors.New("sched: infeasible")
	// ErrIterationLimit reports that a solve exhausted its iteration
	// budget (Request.MaxLPIterations or the engine safety cap).
	ErrIterationLimit = errors.New("sched: iteration limit")
)

// statusErr maps a non-optimal LP status onto the matching sentinel.
func statusErr(s lp.Status) error {
	if s == lp.IterationLimit {
		return ErrIterationLimit
	}
	return fmt.Errorf("%w (LP status %v)", ErrInfeasible, s)
}

func validate(req *Request) error {
	if req.Net == nil {
		return fmt.Errorf("%w: nil network", ErrRequest)
	}
	if len(req.Widths) != req.Net.Spectrum.NumBands() {
		return fmt.Errorf("%w: %d widths for %d bands", ErrRequest, len(req.Widths), req.Net.Spectrum.NumBands())
	}
	if len(req.Weights) != len(req.Net.Links) {
		return fmt.Errorf("%w: %d weights for %d links", ErrRequest, len(req.Weights), len(req.Net.Links))
	}
	return nil
}

// pair is one candidate (link, band) decision variable.
type pair struct {
	link, band int
	weight     float64 // H_ij * c_ij^m
}

// enumeratePairs lists the positive-weight (link, band) variables.
func enumeratePairs(req *Request) []pair {
	pairs := make([]pair, 0, len(req.Net.Links))
	for l, link := range req.Net.Links {
		if req.Weights[l] <= 0 {
			continue
		}
		if req.maxPower(link.From) <= 0 {
			continue
		}
		for _, b := range link.Bands {
			rate := req.Net.Radio.Capacity(req.Widths[b])
			if rate <= 0 {
				continue
			}
			// Screen: the link must close interference-free at the cap.
			s := req.Net.Radio.InterferenceFreeSINR(
				req.Net.Gains[link.From][link.To], req.maxPower(link.From), req.Widths[b])
			if s < req.Net.Radio.SINRThreshold {
				continue
			}
			pairs = append(pairs, pair{link: l, band: b, weight: req.Weights[l] * rate})
		}
	}
	return pairs
}

// buildLP constructs the LP relaxation of S1 over the given pairs:
//
//	max  Σ weight_p · α_p
//	s.t. node-radio rows (22) and big-M SINR rows (24), 0 ≤ α ≤ 1.
func buildLP(req *Request, pairs []pair) (*lp.Problem, []lp.VarID) {
	net := req.Net
	p := lp.NewProblem(lp.Maximize)
	p.SetIterationLimit(req.MaxLPIterations)
	ids := make([]lp.VarID, len(pairs))
	for k, pr := range pairs {
		link := net.Links[pr.link]
		ids[k] = p.AddVar(fmt.Sprintf("a_%d_%d_b%d", link.From, link.To, pr.band), 0, 1, pr.weight)
	}

	// (22): per node, at most Radios(i) activities across all bands and
	// partners (the paper's single-radio rule generalized). Rows are added
	// in node order so the LP is built deterministically (map iteration
	// would randomize row order and hence tie-breaking).
	byNode := make([][]lp.Term, net.NumNodes())
	for k, pr := range pairs {
		link := net.Links[pr.link]
		byNode[link.From] = append(byNode[link.From], lp.Term{Var: ids[k], Coef: 1})
		byNode[link.To] = append(byNode[link.To], lp.Term{Var: ids[k], Coef: 1})
	}
	for node, terms := range byNode {
		if len(terms) > net.Radios(node) {
			p.AddConstraint(fmt.Sprintf("radio_%d", node), lp.LE, float64(net.Radios(node)), terms...)
		}
	}
	// A link occupies one band at a time even with several radios.
	byLink := make([][]lp.Term, len(net.Links))
	for k, pr := range pairs {
		byLink[pr.link] = append(byLink[pr.link], lp.Term{Var: ids[k], Coef: 1})
	}
	for l, terms := range byLink {
		if len(terms) > 1 {
			p.AddConstraint(fmt.Sprintf("oneband_%d", l), lp.LE, 1, terms...)
		}
	}
	// (20)/(21): a node engages a given band at most once (no two
	// same-band transmissions from one node, no same-band transmit+receive)
	// even when it has several radios. For a single radio (22) implies
	// this; with R > 1 it is an independent constraint.
	nBands := net.Spectrum.NumBands()
	byNodeBand := make([][]lp.Term, net.NumNodes()*nBands)
	for k, pr := range pairs {
		link := net.Links[pr.link]
		byNodeBand[link.From*nBands+pr.band] = append(byNodeBand[link.From*nBands+pr.band], lp.Term{Var: ids[k], Coef: 1})
		byNodeBand[link.To*nBands+pr.band] = append(byNodeBand[link.To*nBands+pr.band], lp.Term{Var: ids[k], Coef: 1})
	}
	for nb, terms := range byNodeBand {
		if len(terms) > 1 && net.Radios(nb/nBands) > 1 {
			p.AddConstraint(fmt.Sprintf("nodeband_%d", nb), lp.LE, 1, terms...)
		}
	}

	// (24): big-M SINR rows, one per pair, interference summed over other
	// pairs on the same band whose transmitter differs.
	gamma := net.Radio.SINRThreshold
	eta := net.Radio.NoiseDensity
	for k, pr := range pairs {
		link := net.Links[pr.link]
		w := req.Widths[pr.band]
		noise := eta * w
		// M_ij^m = Γ(ηW + Σ_{k≠i} g_kj P_k^max).
		bigM := noise
		for other := range net.Nodes {
			if other == link.From {
				continue
			}
			bigM += net.Gains[other][link.To] * req.maxPower(other)
		}
		bigM *= gamma

		gP := net.Gains[link.From][link.To] * req.maxPower(link.From)
		// Normalize the row to O(1): gains are ~1e-9..1e-12 while objective
		// weights reach ~1e7, and unscaled rows would drop below the
		// simplex tolerances and be silently ignored.
		rhs := bigM - gamma*noise
		scale := 1.0
		if rhs > 0 {
			scale = 1 / rhs
		}
		//lint:allow hotalloc -- not scratch: AddConstraint retains each SINR row's term slice
		terms := []lp.Term{{Var: ids[k], Coef: (bigM - gP) * scale}}
		for k2, pr2 := range pairs {
			if k2 == k || pr2.band != pr.band {
				continue
			}
			tx := net.Links[pr2.link].From
			if tx == link.From {
				continue
			}
			coef := gamma * net.Gains[tx][link.To] * req.maxPower(tx)
			if coef == 0 {
				continue
			}
			terms = append(terms, lp.Term{Var: ids[k2], Coef: coef * scale})
		}
		p.AddConstraint(fmt.Sprintf("sinr_%d", k), lp.LE, rhs*scale, terms...)
	}
	return p, ids
}

// finalize turns a chosen set of (link, band) activations into an
// Assignment: per band, powers are minimized by iterative power control;
// if a band's set is infeasible even at the caps, the lowest-weight link is
// dropped and control retried.
func finalize(req *Request, pairs []pair, chosen []bool) *Assignment {
	net := req.Net
	asg := &Assignment{
		LinkBand: make([]int, len(net.Links)),
		PowerW:   make([]float64, len(net.Links)),
		RateBits: make([]float64, len(net.Links)),
		Activity: make([]float64, len(net.Links)),
	}
	for l := range asg.LinkBand {
		asg.LinkBand[l] = -1
	}

	type active struct {
		link   int
		weight float64
	}
	perBand := make([][]active, net.Spectrum.NumBands())
	for k, pr := range pairs {
		if chosen[k] {
			perBand[pr.band] = append(perBand[pr.band], active{link: pr.link, weight: pr.weight})
		}
	}

	txs := make([]radio.Transmission, 0, len(pairs))
	caps := make([]float64, 0, len(pairs))
	for band, acts := range perBand {
		if len(acts) == 0 {
			continue
		}
		// Sort descending by weight so drops remove the least valuable.
		// The comparator takes its operands as parameters so the per-band
		// loop allocates no capturing closure (hotalloc).
		slices.SortFunc(acts, func(x, y active) int { return cmp.Compare(y.weight, x.weight) })
		for len(acts) > 0 {
			txs, caps = txs[:0], caps[:0]
			for _, a := range acts {
				link := net.Links[a.link]
				txs = append(txs, radio.Transmission{From: link.From, To: link.To})
				caps = append(caps, req.maxPower(link.From))
			}
			powers, ok := net.Radio.ControlPowers(net.Gains, txs, req.Widths[band], caps)
			if ok {
				rate := net.Radio.Capacity(req.Widths[band])
				for i, a := range acts {
					asg.LinkBand[a.link] = band
					asg.PowerW[a.link] = powers[i]
					asg.RateBits[a.link] = rate
					asg.Activity[a.link] = 1
				}
				break
			}
			acts = acts[:len(acts)-1] // drop the lowest weight and retry
		}
	}
	return asg
}

// SequentialFix is the paper's SF heuristic (Section IV-C1).
type SequentialFix struct{}

var _ Scheduler = SequentialFix{}

// Schedule implements Scheduler.
func (SequentialFix) Schedule(req *Request) (*Assignment, error) {
	if err := validate(req); err != nil {
		return nil, err
	}
	pairs := enumeratePairs(req)
	if len(pairs) == 0 {
		return finalize(req, nil, nil), nil
	}
	prob, ids := buildLP(req, pairs)
	chosen := make([]bool, len(pairs))
	fixedZero := make([]bool, len(pairs))
	var stats SolveStats
	// Warm mode: one live engine for the whole fixing loop (each round is
	// a bound-only edit the engine re-solves with dual simplex), seeded
	// from the previous slot's basis when the pair structure matches.
	var ws *lp.WarmSolver
	if req.Warm != nil {
		ws = warmSolve(prob, req.Warm.sf)
	}

	// nodeBusy counts the radio slots claimed by fixed-to-one pairs;
	// constraint (22) forces pairs touching exhausted nodes to zero.
	// linkUsed marks links already assigned a band.
	nodeBusy := make([]int, req.Net.NumNodes())
	linkUsed := make([]bool, len(req.Net.Links))

	// compatible reports whether adding pair k keeps its band SINR-feasible
	// at the power caps together with the pairs already fixed to one —
	// i.e. whether the big-M rows (24) admit the extended schedule. Fixing
	// only compatible pairs keeps every intermediate LP feasible.
	compatible := func(k int) bool {
		txs := make([]radio.Transmission, 0, len(pairs)+1)
		for k2 := range pairs {
			if chosen[k2] && pairs[k2].band == pairs[k].band {
				link := req.Net.Links[pairs[k2].link]
				txs = append(txs, radio.Transmission{
					From: link.From, To: link.To, Power: req.maxPower(link.From),
				})
			}
		}
		if len(txs) == 0 {
			return true
		}
		link := req.Net.Links[pairs[k].link]
		txs = append(txs, radio.Transmission{
			From: link.From, To: link.To, Power: req.maxPower(link.From),
		})
		return req.Net.Radio.AllMeetThreshold(req.Net.Gains, txs, req.Widths[pairs[k].band])
	}

	exhausted := func(node int) bool { return nodeBusy[node] >= req.Net.Radios(node) }
	nBands := req.Net.Spectrum.NumBands()
	nodeBandUsed := make([]bool, req.Net.NumNodes()*nBands)
	blocked := func(k int) bool {
		link := req.Net.Links[pairs[k].link]
		return exhausted(link.From) || exhausted(link.To) || linkUsed[pairs[k].link] ||
			nodeBandUsed[link.From*nBands+pairs[k].band] ||
			nodeBandUsed[link.To*nBands+pairs[k].band]
	}
	fixOne := func(k int) {
		chosen[k] = true
		prob.SetVarBounds(ids[k], 1, 1)
		linkUsed[pairs[k].link] = true
		from := req.Net.Links[pairs[k].link].From
		to := req.Net.Links[pairs[k].link].To
		nodeBusy[from]++
		nodeBusy[to]++
		nodeBandUsed[from*nBands+pairs[k].band] = true
		nodeBandUsed[to*nBands+pairs[k].band] = true
		for k2 := range pairs {
			if chosen[k2] || fixedZero[k2] {
				continue
			}
			if blocked(k2) {
				fixedZero[k2] = true
				prob.SetVarBounds(ids[k2], 0, 0)
			}
		}
	}

	for {
		remaining := 0
		for k := range pairs {
			if !chosen[k] && !fixedZero[k] {
				remaining++
			}
		}
		if remaining == 0 {
			break
		}
		var sol *lp.Solution
		var err error
		if ws != nil {
			sol, err = ws.Solve()
		} else {
			sol, err = prob.Solve()
		}
		if err != nil {
			return nil, fmt.Errorf("sched: sequential-fix LP: %w", err)
		}
		stats.LPSolves++
		stats.LPIterations += sol.Iterations
		if sol.Status != lp.Optimal {
			// The pinned partial schedule plus all-zeros is always feasible,
			// so anything else is a solver failure worth surfacing.
			return nil, fmt.Errorf("sequential-fix: %w", statusErr(sol.Status))
		}

		const tol = 1e-6
		progressed := false
		// Fix every variable the LP already set to one.
		for k := range pairs {
			if chosen[k] || fixedZero[k] {
				continue
			}
			if sol.Value(ids[k]) >= 1-tol {
				// Guard: a concurrent fix this round may have claimed the
				// node or broken band feasibility already.
				if blocked(k) || !compatible(k) {
					fixedZero[k] = true
					prob.SetVarBounds(ids[k], 0, 0)
					continue
				}
				fixOne(k)
				progressed = true
			}
		}
		// Fix the largest remaining fractional to one.
		bestK, bestV := -1, tol
		for k := range pairs {
			if chosen[k] || fixedZero[k] {
				continue
			}
			if v := sol.Value(ids[k]); v > bestV {
				bestK, bestV = k, v
			}
		}
		if bestK >= 0 {
			if compatible(bestK) {
				fixOne(bestK)
			} else {
				fixedZero[bestK] = true
				prob.SetVarBounds(ids[bestK], 0, 0)
			}
			progressed = true
		}
		if !progressed {
			// Everything left is ~0 in the LP: fix the rest to zero.
			for k := range pairs {
				if !chosen[k] && !fixedZero[k] {
					fixedZero[k] = true
					prob.SetVarBounds(ids[k], 0, 0)
				}
			}
		}
	}
	if ws != nil {
		harvest(ws, &req.Warm.sf, &stats)
	}
	asg := finalize(req, pairs, chosen)
	asg.Stats = stats
	return asg, nil
}

// Greedy inserts (link, band) pairs in descending weight order, keeping an
// insertion only if the whole band stays SINR-feasible at the power caps.
type Greedy struct{}

var _ Scheduler = Greedy{}

// Schedule implements Scheduler.
func (Greedy) Schedule(req *Request) (*Assignment, error) {
	if err := validate(req); err != nil {
		return nil, err
	}
	pairs := enumeratePairs(req)
	order := make([]int, len(pairs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return pairs[order[a]].weight > pairs[order[b]].weight })

	net := req.Net
	nodeBusy := make([]int, net.NumNodes())
	linkUsed := make([]bool, len(net.Links))
	chosen := make([]bool, len(pairs))
	perBand := make(map[int][]radio.Transmission)
	perBandCaps := make(map[int][]float64)
	perBandKs := make(map[int][]int)

	nBands := net.Spectrum.NumBands()
	nodeBandUsed := make([]bool, net.NumNodes()*nBands)
	for _, k := range order {
		pr := pairs[k]
		link := net.Links[pr.link]
		if nodeBusy[link.From] >= net.Radios(link.From) ||
			nodeBusy[link.To] >= net.Radios(link.To) || linkUsed[pr.link] ||
			nodeBandUsed[link.From*nBands+pr.band] || nodeBandUsed[link.To*nBands+pr.band] {
			continue
		}
		txs := append(append([]radio.Transmission(nil), perBand[pr.band]...),
			radio.Transmission{From: link.From, To: link.To})
		caps := append(append([]float64(nil), perBandCaps[pr.band]...), req.maxPower(link.From))
		// Feasible iff every active link on the band meets Γ with all
		// transmitters at their caps (paper constraint (24)).
		for i := range txs {
			txs[i].Power = caps[i]
		}
		if !net.Radio.AllMeetThreshold(net.Gains, txs, req.Widths[pr.band]) {
			continue
		}
		perBand[pr.band] = txs
		perBandCaps[pr.band] = caps
		perBandKs[pr.band] = append(perBandKs[pr.band], k)
		nodeBusy[link.From]++
		nodeBusy[link.To]++
		linkUsed[pr.link] = true
		nodeBandUsed[link.From*nBands+pr.band] = true
		nodeBandUsed[link.To*nBands+pr.band] = true
		chosen[k] = true
	}
	return finalize(req, pairs, chosen), nil
}

// Exact solves S1 to optimality with branch and bound; intended for small
// instances (tests, ablations).
type Exact struct {
	// MaxNodes caps the search (0 = bip default).
	MaxNodes int
}

var _ Scheduler = Exact{}

// Schedule implements Scheduler.
func (e Exact) Schedule(req *Request) (*Assignment, error) {
	if err := validate(req); err != nil {
		return nil, err
	}
	pairs := enumeratePairs(req)
	if len(pairs) == 0 {
		return finalize(req, nil, nil), nil
	}
	prob, ids := buildLP(req, pairs)
	sol, err := bip.Solve(prob, ids, bip.Options{MaxNodes: e.MaxNodes})
	if err != nil {
		return nil, fmt.Errorf("sched: exact: %w", err)
	}
	if sol.Status == bip.Infeasible {
		return nil, fmt.Errorf("exact: %w (all-zeros should be feasible)", ErrInfeasible)
	}
	chosen := make([]bool, len(pairs))
	for k := range pairs {
		if math.Round(sol.Value(ids[k])) == 1 {
			chosen[k] = true
		}
	}
	asg := finalize(req, pairs, chosen)
	asg.Stats = SolveStats{LPSolves: sol.Nodes, LPIterations: sol.LPIterations}
	return asg, nil
}

// Relaxed solves the LP relaxation of S1 once and returns the fractional
// schedule directly — the scheduling stage of the relaxed problem P3̄ that
// produces the paper's lower bound (Theorem 5). Powers are set to the
// optimistic interference-free minimum, keeping the relaxed trajectory's
// energy cost a valid optimistic comparator.
type Relaxed struct{}

var _ Scheduler = Relaxed{}

// Schedule implements Scheduler.
func (Relaxed) Schedule(req *Request) (*Assignment, error) {
	if err := validate(req); err != nil {
		return nil, err
	}
	net := req.Net
	asg := &Assignment{
		LinkBand: make([]int, len(net.Links)),
		PowerW:   make([]float64, len(net.Links)),
		RateBits: make([]float64, len(net.Links)),
		Activity: make([]float64, len(net.Links)),
	}
	for l := range asg.LinkBand {
		asg.LinkBand[l] = -1
	}
	pairs := enumeratePairs(req)
	if len(pairs) == 0 {
		return asg, nil
	}
	prob, ids := buildLP(req, pairs)
	var sol *lp.Solution
	var err error
	switch {
	case req.Warm != nil && (req.Warm.relaxed == nil || req.Warm.relaxed.Matches(prob)):
		// No prior basis (bootstrap a warm-startable engine once) or the
		// pair structure repeats: solve through the warm engine.
		ws := warmSolve(prob, req.Warm.relaxed)
		sol, err = ws.Solve()
		if err == nil {
			harvest(ws, &req.Warm.relaxed, &asg.Stats)
		}
	case req.Warm != nil:
		// The candidate-pair structure moved away from the saved basis.
		// A revised-engine cold solve only to re-export a basis that the
		// next slot would most likely invalidate again is slower than the
		// presolved cold path, so take the cheap route and keep the saved
		// basis — a future slot with matching structure can still use it.
		asg.Stats.BasisInvalidations++
		sol, err = prob.Solve()
	default:
		sol, err = prob.Solve()
	}
	if err != nil {
		return nil, fmt.Errorf("sched: relaxed LP: %w", err)
	}
	asg.Stats.LPSolves = 1
	asg.Stats.LPIterations = sol.Iterations
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("relaxed: %w", statusErr(sol.Status))
	}
	gamma := net.Radio.SINRThreshold
	eta := net.Radio.NoiseDensity
	for k, pr := range pairs {
		a := sol.Value(ids[k])
		if a <= 1e-9 {
			continue
		}
		link := net.Links[pr.link]
		rate := net.Radio.Capacity(req.Widths[pr.band])
		// Optimistic minimal power: meet Γ against noise alone.
		pMin := gamma * eta * req.Widths[pr.band] / net.Gains[link.From][link.To]
		if cap := req.maxPower(link.From); pMin > cap {
			pMin = cap
		}
		asg.RateBits[pr.link] += a * rate
		asg.PowerW[pr.link] += a * pMin
		asg.Activity[pr.link] += a
	}
	for l := range asg.Activity {
		if asg.Activity[l] > 1 {
			asg.Activity[l] = 1
		}
	}
	return asg, nil
}
