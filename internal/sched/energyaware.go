package sched

// EnergyAware is an extension scheduler: it discounts each link's
// virtual-queue weight by the transmit power the link would need, steering
// the schedule toward energy-cheap links when several carry comparable
// backlog. The paper's S1 maximizes Σ H·c alone — transmission energy only
// enters downstream through S4 — so pure drift-optimal scheduling happily
// picks power-hungry links; this wrapper trades a little drift for energy,
// a knob the paper leaves to future work.
//
// The effective weight of link l is
//
//	H_l / (1 + Kappa · P_req(l) / P_max(l))
//
// where P_req is the interference-free minimal power on the link's best
// band. Kappa = 0 reduces to the wrapped scheduler exactly.
type EnergyAware struct {
	// Inner is the underlying solver (nil = SequentialFix).
	Inner Scheduler
	// Kappa scales the power discount (≥ 0).
	Kappa float64
}

var _ Scheduler = EnergyAware{}

// Schedule implements Scheduler.
func (e EnergyAware) Schedule(req *Request) (*Assignment, error) {
	if err := validate(req); err != nil {
		return nil, err
	}
	inner := e.Inner
	if inner == nil {
		inner = SequentialFix{}
	}
	if e.Kappa <= 0 {
		return inner.Schedule(req)
	}

	net := req.Net
	adjusted := make([]float64, len(req.Weights))
	for l, link := range net.Links {
		w := req.Weights[l]
		if w <= 0 {
			continue
		}
		cap := req.maxPower(link.From)
		if cap <= 0 {
			continue
		}
		// Cheapest interference-free power over the link's bands.
		pReq := cap
		for _, b := range link.Bands {
			need := net.Radio.SINRThreshold * net.Radio.NoiseDensity * req.Widths[b] /
				net.Gains[link.From][link.To]
			if need < pReq {
				pReq = need
			}
		}
		adjusted[l] = w / (1 + e.Kappa*pReq/cap)
	}
	sub := *req
	sub.Weights = adjusted
	return inner.Schedule(&sub)
}
