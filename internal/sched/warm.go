package sched

import "greencell/internal/lp"

// WarmState carries LP warm-start state across Schedule calls on behalf of
// a caller that schedules the same network slot after slot (the
// controller's S1 stage). A Request with a non-nil Warm pointer makes the
// LP-backed strategies solve through an lp.WarmSolver: within one Schedule
// call the sequential-fix rounds reuse a single live engine (each fixing
// round is a bound-only edit, re-solved by dual simplex), and across calls
// the final basis is exported here and re-imported next slot when the
// candidate-pair structure matches (lp.Problem.StructureSignature).
//
// The state is engine-internal and survives structure changes gracefully —
// a mismatched basis is discarded and counted in
// SolveStats.BasisInvalidations. Separate slots for the SequentialFix and
// Relaxed strategies keep sched.Instrumented's side-by-side comparison
// (which schedules the same request with both) from cross-contaminating
// their bases.
//
// A WarmState is not safe for concurrent use; use one per controller.
type WarmState struct {
	sf      *lp.Basis
	relaxed *lp.Basis
}

// warmSolve wraps a built LP in a WarmSolver seeded from the given basis
// slot. It returns the solver plus a solve closure the strategy loop calls
// in place of prob.Solve.
func warmSolve(prob *lp.Problem, prior *lp.Basis) *lp.WarmSolver {
	ws := lp.NewWarmSolver(prob)
	ws.ImportBasis(prior)
	return ws
}

// harvest exports the solver's final basis into the given slot and folds
// its counters into stats.
func harvest(ws *lp.WarmSolver, slot **lp.Basis, stats *SolveStats) {
	if b := ws.ExportBasis(); b != nil {
		*slot = b
	}
	w, inv := ws.Stats()
	stats.WarmStarts += w
	stats.BasisInvalidations += inv
}
