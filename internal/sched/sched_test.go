package sched

import (
	"math"
	"testing"

	"greencell/internal/geom"
	"greencell/internal/radio"
	"greencell/internal/rng"
	"greencell/internal/spectrum"
	"greencell/internal/topology"
)

// testNet builds a small all-links network of one BS and n users placed
// randomly in a 1500m square, with every band granted to every node.
func testNet(t *testing.T, src *rng.Source, nUsers int) *topology.Network {
	t.Helper()
	sm := spectrum.Paper()
	nodes := []topology.Node{{
		Kind: topology.BaseStation, Pos: geom.Point{X: 750, Y: 750},
		Spec: topology.NodeSpec{MaxTxPowerW: 20},
	}}
	for i := 0; i < nUsers; i++ {
		nodes = append(nodes, topology.Node{
			Kind: topology.User,
			Pos:  geom.Point{X: src.Uniform(0, 1500), Y: src.Uniform(0, 1500)},
			Spec: topology.NodeSpec{MaxTxPowerW: 1},
		})
	}
	avail := spectrum.NewAvailability(len(nodes), sm)
	for i := range nodes {
		avail.GrantAll(i)
	}
	var links [][2]int
	for i := range nodes {
		for j := range nodes {
			if i != j {
				links = append(links, [2]int{i, j})
			}
		}
	}
	rp := radio.Params{Prop: radio.Propagation{C: 62.5, Gamma: 4}, SINRThreshold: 1, NoiseDensity: 3e-17}
	net, err := topology.Manual(nodes, sm, avail, rp, links)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func fixedWidths(net *topology.Network) []float64 {
	w := make([]float64, net.Spectrum.NumBands())
	for i := range w {
		w[i] = 1.5e6
	}
	w[0] = 1e6
	return w
}

// checkAssignmentFeasible verifies the single-radio constraint (22), the
// SINR threshold at the assigned powers, and the power caps.
func checkAssignmentFeasible(t *testing.T, req *Request, asg *Assignment) {
	t.Helper()
	net := req.Net
	busy := make([]int, net.NumNodes())
	perBand := map[int][]radio.Transmission{}
	for l, band := range asg.LinkBand {
		if band < 0 {
			if asg.PowerW[l] != 0 || asg.RateBits[l] != 0 {
				t.Fatalf("unscheduled link %d has power/rate", l)
			}
			continue
		}
		link := net.Links[l]
		busy[link.From]++
		busy[link.To]++
		if asg.PowerW[l] > req.maxPower(link.From)+1e-9 {
			t.Fatalf("link %d power %v exceeds cap %v", l, asg.PowerW[l], req.maxPower(link.From))
		}
		if asg.Activity[l] != 1 {
			t.Fatalf("integral schedule has activity %v on link %d", asg.Activity[l], l)
		}
		perBand[band] = append(perBand[band], radio.Transmission{
			From: link.From, To: link.To, Power: asg.PowerW[l],
		})
	}
	for node, n := range busy {
		if n > 1 {
			t.Fatalf("node %d participates in %d active links (violates (22))", node, n)
		}
	}
	for band, txs := range perBand {
		if !net.Radio.AllMeetThreshold(net.Gains, txs, req.Widths[band]) {
			t.Fatalf("band %d schedule violates the SINR threshold", band)
		}
	}
}

func schedulers() map[string]Scheduler {
	return map[string]Scheduler{
		"sequential-fix": SequentialFix{},
		"greedy":         Greedy{},
		"exact":          Exact{},
	}
}

func TestSchedulersProduceFeasibleAssignments(t *testing.T) {
	src := rng.New(5)
	for name, s := range schedulers() {
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 10; trial++ {
				net := testNet(t, src, 5)
				weights := make([]float64, len(net.Links))
				for l := range weights {
					weights[l] = src.Uniform(0, 10)
				}
				req := &Request{Net: net, Widths: fixedWidths(net), Weights: weights}
				asg, err := s.Schedule(req)
				if err != nil {
					t.Fatal(err)
				}
				checkAssignmentFeasible(t, req, asg)
			}
		})
	}
}

func TestZeroWeightsScheduleNothing(t *testing.T) {
	src := rng.New(6)
	net := testNet(t, src, 4)
	req := &Request{Net: net, Widths: fixedWidths(net), Weights: make([]float64, len(net.Links))}
	for name, s := range schedulers() {
		asg, err := s.Schedule(req)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for l := range net.Links {
			if asg.Scheduled(l) {
				t.Fatalf("%s scheduled link %d with zero weight (paper fixes α=0 when H=0)", name, l)
			}
		}
	}
}

func TestSomethingIsScheduledWhenProfitable(t *testing.T) {
	src := rng.New(7)
	net := testNet(t, src, 4)
	weights := make([]float64, len(net.Links))
	weights[0] = 5
	req := &Request{Net: net, Widths: fixedWidths(net), Weights: weights}
	for name, s := range schedulers() {
		asg, err := s.Schedule(req)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !asg.Scheduled(0) {
			t.Errorf("%s left the only profitable link unscheduled", name)
		}
	}
}

func TestTxPowerCapExcludesNode(t *testing.T) {
	src := rng.New(8)
	net := testNet(t, src, 4)
	weights := make([]float64, len(net.Links))
	for l := range weights {
		weights[l] = 1
	}
	caps := make([]float64, net.NumNodes())
	// Only the base station (node 0) may transmit.
	caps[0] = 20
	req := &Request{Net: net, Widths: fixedWidths(net), Weights: weights, TxPowerCap: caps}
	for name, s := range schedulers() {
		asg, err := s.Schedule(req)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for l, link := range net.Links {
			if asg.Scheduled(l) && link.From != 0 {
				t.Errorf("%s scheduled energy-gated node %d", name, link.From)
			}
		}
		checkAssignmentFeasible(t, req, asg)
	}
}

// TestHeuristicsNeverBeatExact: branch-and-bound is the optimum of S1, so
// both heuristics must come in at or below it, and the relaxed LP at or
// above it.
func TestHeuristicsNeverBeatExact(t *testing.T) {
	src := rng.New(9)
	for trial := 0; trial < 8; trial++ {
		net := testNet(t, src, 4)
		weights := make([]float64, len(net.Links))
		for l := range weights {
			if src.Bernoulli(0.6) {
				weights[l] = src.Uniform(0.1, 10)
			}
		}
		req := &Request{Net: net, Widths: fixedWidths(net), Weights: weights}

		exact, err := Exact{}.Schedule(req)
		if err != nil {
			t.Fatal(err)
		}
		opt := exact.Objective(weights)

		for name, s := range map[string]Scheduler{"sequential-fix": SequentialFix{}, "greedy": Greedy{}} {
			asg, err := s.Schedule(req)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if got := asg.Objective(weights); got > opt+1e-6*(1+opt) {
				t.Errorf("trial %d: %s objective %v exceeds exact optimum %v", trial, name, got, opt)
			}
		}

		rel, err := Relaxed{}.Schedule(req)
		if err != nil {
			t.Fatal(err)
		}
		relObj := 0.0
		for l := range net.Links {
			relObj += weights[l] * rel.RateBits[l]
		}
		if relObj < opt-1e-6*(1+opt) {
			t.Errorf("trial %d: relaxed LP value %v below integral optimum %v", trial, relObj, opt)
		}
	}
}

// TestSequentialFixQuality tracks the SF heuristic's gap to the optimum —
// it should recover a solid fraction of the exact objective on average.
func TestSequentialFixQuality(t *testing.T) {
	src := rng.New(10)
	sumSF, sumOpt := 0.0, 0.0
	for trial := 0; trial < 8; trial++ {
		net := testNet(t, src, 4)
		weights := make([]float64, len(net.Links))
		for l := range weights {
			weights[l] = src.Uniform(0, 10)
		}
		req := &Request{Net: net, Widths: fixedWidths(net), Weights: weights}
		sf, err := SequentialFix{}.Schedule(req)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := Exact{}.Schedule(req)
		if err != nil {
			t.Fatal(err)
		}
		sumSF += sf.Objective(weights)
		sumOpt += exact.Objective(weights)
	}
	if sumOpt == 0 {
		t.Skip("degenerate instances")
	}
	if ratio := sumSF / sumOpt; ratio < 0.8 {
		t.Errorf("sequential-fix recovers only %.0f%% of the exact objective", 100*ratio)
	}
}

func TestRelaxedActivityBounded(t *testing.T) {
	src := rng.New(11)
	net := testNet(t, src, 5)
	weights := make([]float64, len(net.Links))
	for l := range weights {
		weights[l] = src.Uniform(0, 10)
	}
	req := &Request{Net: net, Widths: fixedWidths(net), Weights: weights}
	asg, err := Relaxed{}.Schedule(req)
	if err != nil {
		t.Fatal(err)
	}
	// Per-node total activity must respect the relaxed (22): Σ ≤ 1.
	act := make([]float64, net.NumNodes())
	for l, link := range net.Links {
		if asg.Activity[l] < -1e-9 || asg.Activity[l] > 1+1e-9 {
			t.Fatalf("activity %v out of [0,1]", asg.Activity[l])
		}
		act[link.From] += asg.Activity[l]
		act[link.To] += asg.Activity[l]
	}
	for node, a := range act {
		if a > 1+1e-6 {
			t.Errorf("node %d relaxed activity %v exceeds 1", node, a)
		}
	}
}

func TestRequestValidation(t *testing.T) {
	src := rng.New(12)
	net := testNet(t, src, 2)
	if _, err := (SequentialFix{}).Schedule(&Request{}); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := (SequentialFix{}).Schedule(&Request{Net: net, Widths: []float64{1}, Weights: make([]float64, len(net.Links))}); err == nil {
		t.Error("bad widths length accepted")
	}
	if _, err := (SequentialFix{}).Schedule(&Request{Net: net, Widths: fixedWidths(net), Weights: []float64{1}}); err == nil {
		t.Error("bad weights length accepted")
	}
}

func TestObjectiveComputation(t *testing.T) {
	asg := &Assignment{
		LinkBand: []int{0, -1, 2},
		RateBits: []float64{100, 0, 50},
		PowerW:   []float64{1, 0, 1},
		Activity: []float64{1, 0, 1},
	}
	got := asg.Objective([]float64{2, 3, 4})
	if math.Abs(got-(2*100+4*50)) > 1e-12 {
		t.Errorf("Objective = %v, want 400", got)
	}
}

// TestFinalizeDropsInfeasibleSet drives finalize directly with a chosen
// set that violates SINR at the caps: the lowest-weight link must be
// dropped rather than scheduled in violation.
func TestFinalizeDropsInfeasibleSet(t *testing.T) {
	// Two crossing links: each interferer sits closer to the victim
	// receiver (50 m) than its own transmitter (100 m), so the pair can
	// never both meet Γ=1 on one band.
	sm := spectrum.Paper()
	nodes := []topology.Node{
		{Kind: topology.User, Pos: geom.Point{X: 0, Y: 0}, Spec: topology.NodeSpec{MaxTxPowerW: 1}},
		{Kind: topology.User, Pos: geom.Point{X: 100, Y: 0}, Spec: topology.NodeSpec{MaxTxPowerW: 1}},
		{Kind: topology.User, Pos: geom.Point{X: 100, Y: 50}, Spec: topology.NodeSpec{MaxTxPowerW: 1}},
		{Kind: topology.User, Pos: geom.Point{X: 0, Y: 50}, Spec: topology.NodeSpec{MaxTxPowerW: 1}},
	}
	avail := spectrum.NewAvailability(len(nodes), sm)
	for i := range nodes {
		avail.GrantAll(i)
	}
	rp := radio.Params{Prop: radio.Propagation{C: 62.5, Gamma: 4}, SINRThreshold: 1, NoiseDensity: 3e-17}
	net, err := topology.Manual(nodes, sm, avail, rp, [][2]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	req := &Request{Net: net, Widths: fixedWidths(net), Weights: []float64{5, 3}}
	pairs := []pair{
		{link: 0, band: 0, weight: 5},
		{link: 1, band: 0, weight: 3},
	}
	asg := finalize(req, pairs, []bool{true, true})
	if !asg.Scheduled(0) {
		t.Error("higher-weight link should survive the drop")
	}
	if asg.Scheduled(1) {
		t.Error("lower-weight link should be dropped (SINR-infeasible set)")
	}
}
