package sched

import (
	"fmt"
	"time"
)

// SolveRecord is one Schedule call as observed by Instrumented: wall
// time, achieved objective, LP work, and (when enabled) the LP-relaxation
// upper bound the heuristic is measured against. The metrics layer
// (internal/sim.Recorder) aggregates these into per-strategy histograms
// and the heuristic-vs-relaxation gap series of docs/METRICS.md.
type SolveRecord struct {
	// Strategy is the inner solver's short name (see StrategyName).
	Strategy string
	// NS is the wall-clock time of the inner Schedule call, nanoseconds
	// (the relaxed comparison solve is not included).
	NS int64
	// Objective is the weighted service Σ_l H_l·c_l the assignment
	// achieves — the value of the paper's Ψ̂1.
	Objective float64
	// RelaxedObjective is the LP relaxation's objective, an upper bound on
	// any integral schedule. Valid only when HasRelaxed.
	RelaxedObjective float64
	// HasRelaxed marks records carrying a relaxation comparison.
	HasRelaxed bool
	// LPSolves / LPIterations mirror Assignment.Stats.
	LPSolves, LPIterations int
}

// Gap returns RelaxedObjective − Objective, the absolute optimality gap
// certificate (0 when no comparison ran). Non-negative up to LP tolerance.
func (r SolveRecord) Gap() float64 {
	if !r.HasRelaxed {
		return 0
	}
	return r.RelaxedObjective - r.Objective
}

// Instrumented wraps a Scheduler with observability: it times every
// Schedule call and reports a SolveRecord to OnSolve. With CompareRelaxed
// it additionally solves the LP relaxation of the same request, yielding a
// per-slot certificate of how far the heuristic sits from the S1 optimum
// (the relaxation bounds the integral optimum from above). The comparison
// roughly doubles the slot's scheduling work, so it is opt-in
// (greencellsim -metrics-gap).
type Instrumented struct {
	Inner Scheduler
	// CompareRelaxed also solves the LP relaxation each slot and records
	// its objective in the SolveRecord.
	CompareRelaxed bool
	// OnSolve receives one record per successful Schedule call. Nil is
	// allowed (timing only, useful in tests).
	OnSolve func(SolveRecord)
}

var _ Scheduler = Instrumented{}

// Schedule implements Scheduler.
func (s Instrumented) Schedule(req *Request) (*Assignment, error) {
	inner := s.Inner
	if inner == nil {
		inner = SequentialFix{}
	}
	start := time.Now()
	asg, err := inner.Schedule(req)
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}
	rec := SolveRecord{
		Strategy:     StrategyName(inner),
		NS:           elapsed.Nanoseconds(),
		Objective:    asg.Objective(req.Weights),
		LPSolves:     asg.Stats.LPSolves,
		LPIterations: asg.Stats.LPIterations,
	}
	if s.CompareRelaxed {
		rel, err := (Relaxed{}).Schedule(req)
		if err != nil {
			return nil, fmt.Errorf("sched: instrumented relaxed comparison: %w", err)
		}
		rec.RelaxedObjective = rel.Objective(req.Weights)
		rec.HasRelaxed = true
	}
	if s.OnSolve != nil {
		s.OnSolve(rec)
	}
	return asg, nil
}

// StrategyName returns a stable short name for a scheduler, used as the
// metrics label ("sf", "greedy", "exact", "relaxed", …).
func StrategyName(s Scheduler) string {
	switch v := s.(type) {
	case SequentialFix:
		return "sf"
	case Greedy:
		return "greedy"
	case Exact:
		return "exact"
	case Relaxed:
		return "relaxed"
	case EnergyAware:
		return "energyaware"
	case Instrumented:
		return StrategyName(v.Inner)
	case nil:
		return "sf" // the controller's default
	default:
		return fmt.Sprintf("%T", s)
	}
}
