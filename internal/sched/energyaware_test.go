package sched

import (
	"testing"

	"greencell/internal/geom"
	"greencell/internal/radio"
	"greencell/internal/spectrum"
	"greencell/internal/topology"
)

// contestNet builds a transmitter with two receivers: one near (cheap) and
// one far (expensive), so exactly one link can be scheduled.
func contestNet(t *testing.T) *topology.Network {
	t.Helper()
	sm := spectrum.Paper()
	nodes := []topology.Node{
		{Kind: topology.BaseStation, Pos: geom.Point{X: 0, Y: 0}, Spec: topology.NodeSpec{MaxTxPowerW: 20}},
		{Kind: topology.User, Pos: geom.Point{X: 300, Y: 0}, Spec: topology.NodeSpec{MaxTxPowerW: 1}},
		{Kind: topology.User, Pos: geom.Point{X: 1800, Y: 0}, Spec: topology.NodeSpec{MaxTxPowerW: 1}},
	}
	avail := spectrum.NewAvailability(len(nodes), sm)
	for i := range nodes {
		avail.GrantAll(i)
	}
	rp := radio.Params{Prop: radio.Propagation{C: 62.5, Gamma: 4}, SINRThreshold: 1, NoiseDensity: 3e-17}
	net, err := topology.Manual(nodes, sm, avail, rp, [][2]int{{0, 1}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestEnergyAwareZeroKappaIsTransparent(t *testing.T) {
	net := contestNet(t)
	widths := fixedWidths(net)
	weights := []float64{3, 5}
	req := &Request{Net: net, Widths: widths, Weights: weights}
	base, err := (SequentialFix{}).Schedule(req)
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := (EnergyAware{Kappa: 0}).Schedule(req)
	if err != nil {
		t.Fatal(err)
	}
	for l := range net.Links {
		if base.LinkBand[l] != wrapped.LinkBand[l] {
			t.Fatalf("Kappa=0 changed the schedule on link %d", l)
		}
	}
}

func TestEnergyAwarePrefersCheapLink(t *testing.T) {
	net := contestNet(t)
	widths := fixedWidths(net)
	// The far link has slightly more backlog: drift-optimal scheduling
	// picks it; the energy-aware wrapper should flip to the near link.
	weights := []float64{4, 5}
	req := &Request{Net: net, Widths: widths, Weights: weights}

	plain, err := (SequentialFix{}).Schedule(req)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Scheduled(1) {
		t.Fatal("precondition: plain scheduler should pick the heavier far link")
	}

	aware, err := (EnergyAware{Kappa: 10}).Schedule(req)
	if err != nil {
		t.Fatal(err)
	}
	if !aware.Scheduled(0) || aware.Scheduled(1) {
		t.Fatalf("energy-aware scheduler should pick the near link: %+v", aware.LinkBand)
	}
	if aware.PowerW[0] >= plain.PowerW[1] {
		t.Errorf("near link power %v should be below far link power %v",
			aware.PowerW[0], plain.PowerW[1])
	}
}

func TestEnergyAwareStillFeasible(t *testing.T) {
	net := contestNet(t)
	widths := fixedWidths(net)
	req := &Request{Net: net, Widths: widths, Weights: []float64{4, 5}}
	asg, err := (EnergyAware{Kappa: 3}).Schedule(req)
	if err != nil {
		t.Fatal(err)
	}
	checkAssignmentFeasible(t, req, asg)
}

func TestEnergyAwareValidates(t *testing.T) {
	if _, err := (EnergyAware{Kappa: 1}).Schedule(&Request{}); err == nil {
		t.Error("nil network accepted")
	}
}

// multiRadioNet: one 2-radio BS with three single-radio users.
func multiRadioNet(t *testing.T, radios int) *topology.Network {
	t.Helper()
	sm := spectrum.Paper()
	bs := topology.NodeSpec{MaxTxPowerW: 20, Radios: radios}
	user := topology.NodeSpec{MaxTxPowerW: 1}
	nodes := []topology.Node{
		{Kind: topology.BaseStation, Pos: geom.Point{X: 0, Y: 0}, Spec: bs},
		{Kind: topology.User, Pos: geom.Point{X: 400, Y: 0}, Spec: user},
		{Kind: topology.User, Pos: geom.Point{X: 0, Y: 400}, Spec: user},
		{Kind: topology.User, Pos: geom.Point{X: -400, Y: 0}, Spec: user},
	}
	avail := spectrum.NewAvailability(len(nodes), sm)
	for i := range nodes {
		avail.GrantAll(i)
	}
	rp := radio.Params{Prop: radio.Propagation{C: 62.5, Gamma: 4}, SINRThreshold: 1, NoiseDensity: 3e-17}
	net, err := topology.Manual(nodes, sm, avail, rp, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestMultiRadioSchedulesMoreLinks: a 2-radio base station can feed two
// users at once (on different bands); a single radio cannot.
func TestMultiRadioSchedulesMoreLinks(t *testing.T) {
	for _, s := range []Scheduler{SequentialFix{}, Greedy{}, Exact{}} {
		single := multiRadioNet(t, 1)
		double := multiRadioNet(t, 2)
		weights := []float64{5, 5, 5}
		widths := fixedWidths(single)

		count := func(net *topology.Network) int {
			asg, err := s.Schedule(&Request{Net: net, Widths: widths, Weights: weights})
			if err != nil {
				t.Fatal(err)
			}
			n := 0
			for l := range net.Links {
				if asg.Scheduled(l) {
					n++
				}
			}
			return n
		}
		if got := count(single); got != 1 {
			t.Errorf("%T single radio scheduled %d links, want 1", s, got)
		}
		if got := count(double); got < 2 {
			t.Errorf("%T dual radio scheduled %d links, want >= 2", s, got)
		}
	}
}

// TestMultiRadioOneBandPerLink: even with spare radios a link may use only
// one band at a time.
func TestMultiRadioOneBandPerLink(t *testing.T) {
	net := multiRadioNet(t, 3)
	weights := []float64{100, 0, 0} // only link 0 is attractive
	asg, err := (Exact{}).Schedule(&Request{Net: net, Widths: fixedWidths(net), Weights: weights})
	if err != nil {
		t.Fatal(err)
	}
	if !asg.Scheduled(0) {
		t.Fatal("profitable link unscheduled")
	}
	if asg.Activity[0] > 1+1e-9 {
		t.Errorf("link 0 activity %v: one band per link violated", asg.Activity[0])
	}
}
