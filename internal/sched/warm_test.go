package sched

import (
	"math"
	"testing"

	"greencell/internal/rng"
)

// slotWeights draws a fresh weight vector, zeroing a few links so the
// candidate-pair structure genuinely changes between slots.
func slotWeights(src *rng.Source, n int) []float64 {
	w := make([]float64, n)
	for l := range w {
		if src.Bernoulli(0.2) {
			continue
		}
		w[l] = src.Uniform(0, 5e5)
	}
	return w
}

// TestRelaxedWarmMatchesCold runs the relaxed (pure-LP) scheduler across a
// sequence of slots with and without warm-starting. The relaxed objective
// is a unique LP optimum up to degeneracy, so the two trajectories must
// match it slot for slot.
func TestRelaxedWarmMatchesCold(t *testing.T) {
	src := rng.New(61)
	net := testNet(t, src, 6)
	widths := fixedWidths(net)
	warm := &WarmState{}
	warmed := 0
	for slot := 0; slot < 20; slot++ {
		// All-positive weights: the candidate-pair structure is identical
		// every slot, so the cross-call basis import can actually fire.
		weights := make([]float64, len(net.Links))
		for l := range weights {
			weights[l] = src.Uniform(1e3, 5e5)
		}
		cold, err := (Relaxed{}).Schedule(&Request{Net: net, Widths: widths, Weights: weights})
		if err != nil {
			t.Fatal(err)
		}
		hot, err := (Relaxed{}).Schedule(&Request{Net: net, Widths: widths, Weights: weights, Warm: warm})
		if err != nil {
			t.Fatal(err)
		}
		co, ho := cold.Objective(weights), hot.Objective(weights)
		if tol := 1e-6 * (1 + math.Abs(co)); math.Abs(co-ho) > tol {
			t.Fatalf("slot %d: relaxed objective cold=%v warm=%v", slot, co, ho)
		}
		warmed += hot.Stats.WarmStarts
	}
	if warmed == 0 {
		t.Fatal("no warm starts across 20 relaxed slots")
	}
}

// TestSequentialFixWarmFeasibleAndCounted drives the SF heuristic through
// slots with warm state attached: every assignment must stay feasible
// under the full checker, and the fixing rounds after the first must
// warm-start (they are bound-only edits on one live engine).
func TestSequentialFixWarmFeasibleAndCounted(t *testing.T) {
	src := rng.New(62)
	net := testNet(t, src, 6)
	widths := fixedWidths(net)
	warm := &WarmState{}
	warmed := 0
	for slot := 0; slot < 10; slot++ {
		req := &Request{Net: net, Widths: widths, Weights: slotWeights(src, len(net.Links)), Warm: warm}
		asg, err := (SequentialFix{}).Schedule(req)
		if err != nil {
			t.Fatal(err)
		}
		checkAssignmentFeasible(t, req, asg)
		if asg.Stats.LPSolves > 1 && asg.Stats.WarmStarts == 0 {
			t.Fatalf("slot %d: %d fixing rounds but zero warm starts", slot, asg.Stats.LPSolves)
		}
		warmed += asg.Stats.WarmStarts
	}
	if warmed == 0 {
		t.Fatal("no warm starts across 10 SF slots")
	}
}

// TestSequentialFixWarmObjectiveClose compares warm and cold SF end to
// end. SF is a rounding heuristic on top of the LP, so exact equality is
// not guaranteed when the warm engine lands on a different degenerate
// vertex — but on a fixed seed the schedules' objectives must stay within
// a few percent, and this pin catches any gross divergence.
func TestSequentialFixWarmObjectiveClose(t *testing.T) {
	src := rng.New(63)
	net := testNet(t, src, 5)
	widths := fixedWidths(net)
	warm := &WarmState{}
	for slot := 0; slot < 10; slot++ {
		weights := slotWeights(src, len(net.Links))
		cold, err := (SequentialFix{}).Schedule(&Request{Net: net, Widths: widths, Weights: weights})
		if err != nil {
			t.Fatal(err)
		}
		hot, err := (SequentialFix{}).Schedule(&Request{Net: net, Widths: widths, Weights: weights, Warm: warm})
		if err != nil {
			t.Fatal(err)
		}
		co, ho := cold.Objective(weights), hot.Objective(weights)
		if tol := 0.05 * (1 + math.Abs(co)); math.Abs(co-ho) > tol {
			t.Fatalf("slot %d: SF objective cold=%v warm=%v", slot, co, ho)
		}
	}
}
