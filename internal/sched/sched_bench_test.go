package sched

import (
	"testing"

	"greencell/internal/rng"
	"greencell/internal/topology"
	"greencell/internal/units"
)

// benchRequest builds a paper-scale scheduling instance with random
// positive weights on a third of the links (typical steady-state density).
func benchRequest(b *testing.B) *Request {
	b.Helper()
	src := rng.New(42)
	net, err := topology.Build(topology.Paper(), src.Split("topology"))
	if err != nil {
		b.Fatal(err)
	}
	weights := make([]float64, len(net.Links))
	for l := range weights {
		if src.Bernoulli(0.35) {
			weights[l] = src.Uniform(1, 500)
		}
	}
	widths := units.HzSlice(net.Spectrum.SampleWidths(src.Split("widths")))
	return &Request{Net: net, Widths: widths, Weights: weights}
}

func benchScheduler(b *testing.B, s Scheduler) {
	b.Helper()
	req := benchRequest(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Schedule(req); err != nil {
			b.Fatal(err)
		}
	}
}

// The S1 ablation: the paper's sequential-fix against the greedy heuristic
// and the fractional relaxation, at paper scale (22 nodes, 5 bands).
func BenchmarkScheduleSequentialFix(b *testing.B) { benchScheduler(b, SequentialFix{}) }
func BenchmarkScheduleGreedy(b *testing.B)        { benchScheduler(b, Greedy{}) }
func BenchmarkScheduleRelaxed(b *testing.B)       { benchScheduler(b, Relaxed{}) }

// BenchmarkScheduleExact runs branch and bound on a reduced instance (the
// full paper scale is out of reach for exact search in a benchmark loop).
func BenchmarkScheduleExact(b *testing.B) {
	src := rng.New(43)
	cfg := topology.Paper()
	cfg.NumUsers = 6
	cfg.MaxNeighbors = 3
	net, err := topology.Build(cfg, src.Split("topology"))
	if err != nil {
		b.Fatal(err)
	}
	weights := make([]float64, len(net.Links))
	for l := range weights {
		weights[l] = src.Uniform(1, 500)
	}
	req := &Request{Net: net, Widths: units.HzSlice(net.Spectrum.SampleWidths(src.Split("w"))), Weights: weights}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Exact{}).Schedule(req); err != nil {
			b.Fatal(err)
		}
	}
}
