// Package routing solves the paper's per-slot routing subproblem S3:
//
//	min Σ_s Σ_(i,j) (−Q_i^s + Q_j^s + β·H_ij) · l_ij^s
//
// subject to the source/destination rules (16)–(18) and the link capacity
// rule (25). Because the objective is a weighted sum and the capacity
// constraint couples only the sessions sharing one link, the optimum
// decomposes per link (Section IV-C3):
//
//   - On a link into a session's destination, ship the demanded v_s(t)
//     (constraint (18)), on the incoming link with the smallest
//     coefficient.
//   - On every other link, give the entire capacity to the session with
//     the most negative coefficient; ship nothing if no coefficient is
//     negative.
//
// Deviation from the paper (documented in DESIGN.md): shipments are capped
// by the link's scheduled capacity even on destination links, since
// literally forcing l = v_s(t) can violate (25) when the link is
// unscheduled or narrow.
package routing

import (
	"errors"
	"fmt"

	"greencell/internal/topology"
)

// Request is one slot's routing problem.
type Request struct {
	Net *topology.Network
	// NumSessions is the session count S.
	NumSessions int
	// Backlog returns Q_i^s(t); it must return 0 for a session's
	// destination (destinations keep no queue — Section III-A).
	Backlog func(sessionIdx, node int) float64
	// H is the scaled virtual queue H_ij(t) per candidate link.
	H []float64
	// Beta is the paper's β = max_{ij} c_ij^max·Δt/δ scaling factor.
	Beta float64
	// CapacityPkts is each link's scheduled capacity this slot, in packets
	// (0 when unscheduled).
	CapacityPkts []float64
	// Dest[s] is d_s; Source[s] is this slot's source node s_s(t).
	Dest, Source []int
	// Sink optionally generalizes the destination test: packets of session
	// s are delivered on reaching any node where Sink(s, node) is true
	// (uplink anycast to the base stations). Nil means node == Dest[s].
	Sink func(sessionIdx, node int) bool
	// DemandPkts[s] is v_s(t).
	DemandPkts []float64
}

// Decision carries the chosen flows.
type Decision struct {
	// Flow[l][s] is l_ij^s(t) in packets on candidate link l.
	Flow [][]float64
}

// FlowOn returns the total flow Σ_s l_ij^s on link l.
func (d *Decision) FlowOn(l int) float64 {
	sum := 0.0
	for _, v := range d.Flow[l] {
		sum += v
	}
	return sum
}

// ErrRequest reports an invalid routing request.
var ErrRequest = errors.New("routing: invalid request")

// sink reports whether node is a delivery point for session s.
func (r *Request) sink(s, node int) bool {
	if r.Sink != nil {
		return r.Sink(s, node)
	}
	return node == r.Dest[s]
}

// coefficient returns the S3 objective weight of l_ij^s.
func coefficient(req *Request, s int, link topology.Link) float64 {
	qi := req.Backlog(s, link.From)
	qj := 0.0
	if !req.sink(s, link.To) {
		qj = req.Backlog(s, link.To)
	}
	return -qi + qj + req.Beta*req.H[link.ID]
}

// eligible reports whether session s may use link l at all, per the
// source/destination rules (16)–(17).
func eligible(req *Request, s int, link topology.Link) bool {
	if link.To == req.Source[s] {
		return false // (16): no incoming data at the source
	}
	if req.sink(s, link.From) {
		return false // (17): no outgoing data at a delivery point
	}
	return true
}

// Decide solves S3.
func Decide(req *Request) (*Decision, error) {
	if req.Net == nil {
		return nil, fmt.Errorf("%w: nil network", ErrRequest)
	}
	if len(req.H) != len(req.Net.Links) || len(req.CapacityPkts) != len(req.Net.Links) {
		return nil, fmt.Errorf("%w: H/capacity length mismatch", ErrRequest)
	}
	if len(req.Dest) != req.NumSessions || len(req.Source) != req.NumSessions ||
		len(req.DemandPkts) != req.NumSessions {
		return nil, fmt.Errorf("%w: per-session slice length mismatch", ErrRequest)
	}

	d := &Decision{Flow: make([][]float64, len(req.Net.Links))}
	for l := range d.Flow {
		d.Flow[l] = make([]float64, req.NumSessions)
	}
	remaining := make([]float64, len(req.Net.Links))
	copy(remaining, req.CapacityPkts)

	// Destination rule first: for each session, ship v_s(t) into a delivery
	// point on the eligible incoming link with the smallest coefficient
	// (constraint (18)).
	for s := 0; s < req.NumSessions; s++ {
		if req.DemandPkts[s] <= 0 {
			continue
		}
		bestL := -1
		bestW := 0.0
		for node := range req.Net.Nodes {
			if !req.sink(s, node) {
				continue
			}
			for _, l := range req.Net.InLinks(node) {
				link := req.Net.Links[l]
				if !eligible(req, s, link) || remaining[l] <= 0 {
					continue
				}
				w := coefficient(req, s, link)
				if bestL < 0 || w < bestW {
					bestL, bestW = l, w
				}
			}
		}
		if bestL < 0 {
			continue
		}
		amt := req.DemandPkts[s]
		if amt > remaining[bestL] {
			amt = remaining[bestL]
		}
		d.Flow[bestL][s] += amt
		remaining[bestL] -= amt
	}

	// Every other link: full remaining capacity to the most negative
	// coefficient among eligible sessions; ties to the lowest session index.
	for l, link := range req.Net.Links {
		if remaining[l] <= 0 {
			continue
		}
		bestS := -1
		bestW := 0.0 // only strictly negative coefficients ship
		for s := 0; s < req.NumSessions; s++ {
			if !eligible(req, s, link) {
				continue
			}
			if w := coefficient(req, s, link); w < bestW {
				bestS, bestW = s, w
			}
		}
		if bestS >= 0 {
			d.Flow[l][bestS] += remaining[l]
			remaining[l] = 0
		}
	}
	return d, nil
}

// Objective evaluates the S3 objective Σ coefficient·flow of a decision —
// used by tests to compare against brute force.
func Objective(req *Request, d *Decision) float64 {
	sum := 0.0
	for l, link := range req.Net.Links {
		for s := 0; s < req.NumSessions; s++ {
			if f := d.Flow[l][s]; f != 0 {
				sum += coefficient(req, s, link) * f
			}
		}
	}
	return sum
}
