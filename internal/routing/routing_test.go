package routing

import (
	"math"
	"testing"

	"greencell/internal/geom"
	"greencell/internal/radio"
	"greencell/internal/rng"
	"greencell/internal/spectrum"
	"greencell/internal/topology"
)

// lineNet builds 0(BS) -> 1(user) -> 2(user) with an extra direct link
// 0 -> 2, all on the universal band.
func lineNet(t *testing.T) *topology.Network {
	t.Helper()
	sm := spectrum.Paper()
	nodes := []topology.Node{
		{Kind: topology.BaseStation, Pos: geom.Point{X: 0, Y: 0}},
		{Kind: topology.User, Pos: geom.Point{X: 500, Y: 0}},
		{Kind: topology.User, Pos: geom.Point{X: 1000, Y: 0}},
	}
	avail := spectrum.NewAvailability(len(nodes), sm)
	for i := range nodes {
		avail.GrantAll(i)
	}
	rp := radio.Params{Prop: radio.Propagation{C: 62.5, Gamma: 4}, SINRThreshold: 1, NoiseDensity: 1e-20}
	net, err := topology.Manual(nodes, sm, avail, rp, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// baseReq builds a one-session request over lineNet: session 0 sourced at
// node 0, destined to node 2.
func baseReq(net *topology.Network, q map[int]float64, h []float64, caps []float64) *Request {
	return &Request{
		Net:         net,
		NumSessions: 1,
		Backlog: func(s, node int) float64 {
			if node == 2 {
				return 0 // destination keeps no queue
			}
			return q[node]
		},
		H:            h,
		Beta:         10,
		CapacityPkts: caps,
		Dest:         []int{2},
		Source:       []int{0},
		DemandPkts:   []float64{5},
	}
}

func TestDestinationRulePullsDemand(t *testing.T) {
	net := lineNet(t)
	// Node 1 holds packets; link 1->2 (id 1) has capacity.
	d, err := Decide(baseReq(net, map[int]float64{0: 0, 1: 100}, []float64{0, 0, 0}, []float64{50, 50, 50}))
	if err != nil {
		t.Fatal(err)
	}
	// Demand 5 should arrive at the destination over the in-link with the
	// smallest coefficient: link 1->2 has coefficient -100, link 0->2 has 0.
	if got := d.Flow[1][0]; got < 5 {
		t.Errorf("flow on 1->2 = %v, want >= demand 5", got)
	}
	if got := d.FlowOn(1); got > 50+1e-9 {
		t.Errorf("flow on 1->2 = %v exceeds capacity", got)
	}
}

func TestDestinationRuleCappedByCapacity(t *testing.T) {
	net := lineNet(t)
	d, err := Decide(baseReq(net, map[int]float64{0: 0, 1: 100}, []float64{0, 0, 0}, []float64{0, 2, 0}))
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Flow[1][0]; math.Abs(got-2) > 1e-9 {
		t.Errorf("flow on 1->2 = %v, want capacity 2 (< demand 5)", got)
	}
}

func TestBackpressureShipsOnNegativeCoefficient(t *testing.T) {
	net := lineNet(t)
	// Node 0 heavily backlogged; H=0: coefficient of 0->1 is -50+0+0 < 0:
	// the full capacity goes to session 0.
	d, err := Decide(baseReq(net, map[int]float64{0: 50, 1: 0}, []float64{0, 0, 0}, []float64{30, 0, 0}))
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Flow[0][0]; math.Abs(got-30) > 1e-9 {
		t.Errorf("flow on 0->1 = %v, want full capacity 30", got)
	}
}

func TestNoShipmentOnNonNegativeCoefficient(t *testing.T) {
	net := lineNet(t)
	// Q equal at both ends: coefficient 0, must not ship (paper S3 rule).
	d, err := Decide(baseReq(net, map[int]float64{0: 10, 1: 10}, []float64{0, 0, 0}, []float64{30, 0, 0}))
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Flow[0][0]; got != 0 {
		t.Errorf("flow on 0->1 = %v, want 0 for zero coefficient", got)
	}
}

func TestVirtualQueuePenaltyBlocksLink(t *testing.T) {
	net := lineNet(t)
	// Differential 50, but βH = 10*6 = 60 > 50: link blocked.
	d, err := Decide(baseReq(net, map[int]float64{0: 50, 1: 0}, []float64{6, 0, 0}, []float64{30, 0, 0}))
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Flow[0][0]; got != 0 {
		t.Errorf("flow on 0->1 = %v, want 0 when βH exceeds differential", got)
	}
}

func TestSourceReceivesNothing(t *testing.T) {
	sm := spectrum.Paper()
	nodes := []topology.Node{
		{Kind: topology.BaseStation, Pos: geom.Point{X: 0, Y: 0}},
		{Kind: topology.User, Pos: geom.Point{X: 500, Y: 0}},
		{Kind: topology.User, Pos: geom.Point{X: 1000, Y: 0}},
	}
	avail := spectrum.NewAvailability(len(nodes), sm)
	for i := range nodes {
		avail.GrantAll(i)
	}
	rp := radio.Params{Prop: radio.Propagation{C: 62.5, Gamma: 4}, SINRThreshold: 1, NoiseDensity: 1e-20}
	// Include a reverse link 1->0 into the source.
	net, err := topology.Manual(nodes, sm, avail, rp, [][2]int{{0, 1}, {1, 0}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decide(&Request{
		Net:         net,
		NumSessions: 1,
		Backlog: func(s, node int) float64 {
			if node == 1 {
				return 100 // huge backlog at node 1 — would love to dump to 0
			}
			return 0
		},
		H:            []float64{0, 0, 0},
		Beta:         10,
		CapacityPkts: []float64{50, 50, 50},
		Dest:         []int{2},
		Source:       []int{0},
		DemandPkts:   []float64{5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Flow[1][0]; got != 0 {
		t.Errorf("flow into source on 1->0 = %v, want 0 (constraint (16))", got)
	}
}

func TestDestinationSendsNothing(t *testing.T) {
	sm := spectrum.Paper()
	nodes := []topology.Node{
		{Kind: topology.BaseStation, Pos: geom.Point{X: 0, Y: 0}},
		{Kind: topology.User, Pos: geom.Point{X: 500, Y: 0}},
	}
	avail := spectrum.NewAvailability(len(nodes), sm)
	for i := range nodes {
		avail.GrantAll(i)
	}
	rp := radio.Params{Prop: radio.Propagation{C: 62.5, Gamma: 4}, SINRThreshold: 1, NoiseDensity: 1e-20}
	net, err := topology.Manual(nodes, sm, avail, rp, [][2]int{{0, 1}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decide(&Request{
		Net:         net,
		NumSessions: 1,
		Backlog:     func(s, node int) float64 { return 0 },
		H:           []float64{0, 0},
		Beta:        10,
		// Both links have capacity; destination is node 1.
		CapacityPkts: []float64{50, 50},
		Dest:         []int{1},
		Source:       []int{0},
		DemandPkts:   []float64{5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Flow[1][0]; got != 0 {
		t.Errorf("flow out of destination = %v, want 0 (constraint (17))", got)
	}
}

func TestMultiSessionPicksMostNegative(t *testing.T) {
	net := lineNet(t)
	// Two sessions; session 1 has the steeper differential on link 0->1.
	d, err := Decide(&Request{
		Net:         net,
		NumSessions: 2,
		Backlog: func(s, node int) float64 {
			q := map[int]map[int]float64{
				0: {0: 20, 1: 0},
				1: {0: 90, 1: 0},
			}
			if node == 2 {
				return 0
			}
			return q[s][node]
		},
		H:            []float64{0, 0, 0},
		Beta:         10,
		CapacityPkts: []float64{40, 0, 0},
		Dest:         []int{2, 2},
		Source:       []int{0, 0},
		DemandPkts:   []float64{0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Flow[0][0] != 0 || math.Abs(d.Flow[0][1]-40) > 1e-9 {
		t.Errorf("link 0->1 flows = (%v, %v), want (0, 40): steeper session wins",
			d.Flow[0][0], d.Flow[0][1])
	}
}

// TestGreedyMatchesBruteForce verifies on random instances that the
// closed-form per-link rule attains the true S3 optimum (computed by brute
// force over which session gets each link, plus the forced destination
// pulls).
func TestGreedyMatchesBruteForce(t *testing.T) {
	net := lineNet(t)
	src := rng.New(33)
	for trial := 0; trial < 300; trial++ {
		q := map[int]map[int]float64{}
		for s := 0; s < 2; s++ {
			q[s] = map[int]float64{0: src.Uniform(0, 50), 1: src.Uniform(0, 50)}
		}
		h := []float64{src.Uniform(0, 3), src.Uniform(0, 3), src.Uniform(0, 3)}
		caps := []float64{src.Uniform(0, 20), src.Uniform(0, 20), src.Uniform(0, 20)}
		req := &Request{
			Net:         net,
			NumSessions: 2,
			Backlog: func(s, node int) float64 {
				if node == 2 {
					return 0
				}
				return q[s][node]
			},
			H:            h,
			Beta:         5,
			CapacityPkts: caps,
			Dest:         []int{2, 2},
			Source:       []int{0, 0},
			DemandPkts:   []float64{0, 0}, // disable forced pulls: pure S3
		}
		d, err := Decide(req)
		if err != nil {
			t.Fatal(err)
		}
		got := Objective(req, d)

		// Brute force: each link independently assigns its full capacity to
		// one session or ships nothing.
		want := 0.0
		for l, link := range net.Links {
			best := 0.0
			for s := 0; s < 2; s++ {
				if !eligible(req, s, link) {
					continue
				}
				if w := coefficient(req, s, link) * caps[l]; w < best {
					best = w
				}
			}
			want += best
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: objective %v, brute force %v", trial, got, want)
		}
	}
}

func TestRequestValidation(t *testing.T) {
	net := lineNet(t)
	if _, err := Decide(&Request{}); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := Decide(&Request{Net: net, H: []float64{1}, CapacityPkts: []float64{1, 2, 3}}); err == nil {
		t.Error("mismatched H length accepted")
	}
	if _, err := Decide(&Request{
		Net: net, NumSessions: 2,
		H: []float64{0, 0, 0}, CapacityPkts: []float64{0, 0, 0},
		Dest: []int{1}, Source: []int{0, 0}, DemandPkts: []float64{1, 1},
	}); err == nil {
		t.Error("mismatched per-session slices accepted")
	}
}
