package lyapunov

import (
	"math"
	"testing"
	"testing/quick"

	"greencell/internal/rng"
)

func TestValue(t *testing.T) {
	s := State{Q: []float64{3, 4}, H: []float64{1}, Z: []float64{-2}}
	// ½(9 + 16 + 1 + 4) = 15.
	if got := Value(s); math.Abs(got-15) > 1e-12 {
		t.Errorf("Value = %v, want 15", got)
	}
	if Value(State{}) != 0 {
		t.Error("empty state should have zero energy")
	}
}

func TestDrift(t *testing.T) {
	a := State{Q: []float64{1}}
	b := State{Q: []float64{3}}
	if got := Drift(a, b); math.Abs(got-4) > 1e-12 {
		t.Errorf("Drift = %v, want 4", got)
	}
}

// TestQueueDriftBoundProperty is the algebra of Lemma 1 per queue:
// ½(Q'² − Q²) ≤ ½(a²+b²) + Q(a−b) for the max-law dynamics, for any
// non-negative inputs.
func TestQueueDriftBoundProperty(t *testing.T) {
	f := func(q, a, b float64) bool {
		// Map arbitrary inputs into a sane magnitude range; quick generates
		// values near ±1e300 whose squares overflow.
		clamp := func(x float64) float64 {
			x = math.Abs(x)
			if !(x < 1e6) { // also catches NaN/Inf
				x = math.Mod(x, 1e6)
				if math.IsNaN(x) {
					x = 0
				}
			}
			return x
		}
		q, a, b = clamp(q), clamp(a), clamp(b)
		qNext := StepMaxLaw(q, a, b)
		drift := (qNext*qNext - q*q) / 2
		bound := QueueDriftUpperBound(Flow{Backlog: q, Arrival: a, Service: b})
		return drift <= bound+1e-6*(1+math.Abs(bound))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQueueDriftBoundTightWithoutUnderflow: when the service does not
// overshoot the backlog the bound is exact.
func TestQueueDriftBoundTightWithoutUnderflow(t *testing.T) {
	src := rng.New(1)
	for i := 0; i < 1000; i++ {
		q := src.Uniform(5, 50)
		b := src.Uniform(0, q) // no underflow
		a := src.Uniform(0, 10)
		qNext := StepMaxLaw(q, a, b)
		drift := (qNext*qNext - q*q) / 2
		bound := QueueDriftUpperBound(Flow{Backlog: q, Arrival: a, Service: b})
		// drift = ½((q-b+a)² − q²) = ½(a−b)² + q(a−b) ≤ ½(a²+b²) + q(a−b):
		// gap is exactly ab ≥ 0.
		if bound-drift < -1e-9 || bound-drift > a*b+1e-9 {
			t.Fatalf("gap %v outside [0, ab=%v]", bound-drift, a*b)
		}
	}
}

func TestSignedQueueExactAlgebra(t *testing.T) {
	src := rng.New(2)
	for i := 0; i < 1000; i++ {
		z := src.Uniform(-100, 100)
		up := src.Uniform(0, 10)
		down := src.Uniform(0, 10)
		zNext := z + up - down
		drift := (zNext*zNext - z*z) / 2
		var a Audit
		a.AddSigned(z, up, down)
		if math.Abs(drift-a.Bound()) > 1e-9 {
			t.Fatalf("signed drift %v != bound %v (should be exact)", drift, a.Bound())
		}
	}
}

// TestAuditAccumulatesWholeSystem drives a random multi-queue system one
// slot and checks the aggregated inequality.
func TestAuditAccumulatesWholeSystem(t *testing.T) {
	src := rng.New(3)
	for trial := 0; trial < 200; trial++ {
		nQ := 1 + src.Intn(10)
		nZ := src.Intn(5)
		var before, after State
		var audit Audit
		for i := 0; i < nQ; i++ {
			q := src.Uniform(0, 30)
			a := src.Uniform(0, 8)
			b := src.Uniform(0, 8)
			before.Q = append(before.Q, q)
			after.Q = append(after.Q, StepMaxLaw(q, a, b))
			audit.AddQueue(Flow{Backlog: q, Arrival: a, Service: b})
		}
		for i := 0; i < nZ; i++ {
			z := src.Uniform(-50, 50)
			up := src.Uniform(0, 5)
			down := src.Uniform(0, 5)
			before.Z = append(before.Z, z)
			after.Z = append(after.Z, z+up-down)
			audit.AddSigned(z, up, down)
		}
		drift := Drift(before, after)
		if drift > audit.Bound()+1e-6*(1+math.Abs(audit.Bound())) {
			t.Fatalf("trial %d: drift %v exceeds bound %v", trial, drift, audit.Bound())
		}
	}
}
