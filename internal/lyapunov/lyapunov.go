// Package lyapunov provides the quadratic Lyapunov function of the paper's
// Section IV-B and the per-slot drift algebra behind Lemma 1, so the
// controller can *numerically audit* the inequality its optimality proof
// rests on:
//
//	L(Θ) = ½ [ Σ (Q_i^s)² + Σ (H_ij)² + Σ (z_i)² ]
//
// For the queue laws used by the controller,
//
//	Q' = max(Q − b, 0) + a   ⟹  ½(Q'² − Q²) ≤ ½(a² + b²) + Q·(a − b)
//	z' = z + c − d           ⟹  ½(z'² − z²) = z·(c − d) + ½(c − d)²
//
// summing over all queues gives the realized drift bound
//
//	ΔL ≤ SquareTerms + CrossTerms
//
// where SquareTerms collects the ½(a²+b²) (resp. ½(c−d)²) contributions and
// CrossTerms the Q·(a−b)-style products. Lemma 1's constant B (eq. (34)) is
// precisely an a-priori upper bound on E[SquareTerms]; the audit checks the
// realized inequality and SquareTerms ≤ B every slot.
package lyapunov

// State is a flattened snapshot of Θ(t): all data queues, all virtual
// queues, and all shifted energy levels.
type State struct {
	Q []float64 // data backlogs, any fixed order
	H []float64 // virtual link backlogs
	Z []float64 // shifted battery levels (may be negative)
}

// Value returns L(Θ).
func Value(s State) float64 {
	sum := 0.0
	for _, v := range s.Q {
		sum += v * v
	}
	for _, v := range s.H {
		sum += v * v
	}
	for _, v := range s.Z {
		sum += v * v
	}
	return sum / 2
}

// Drift returns L(after) − L(before).
func Drift(before, after State) float64 {
	return Value(after) - Value(before)
}

// Flow is one queue's realized slot activity: its backlog at the start of
// the slot, its arrival a(t), and its offered service b(t).
type Flow struct {
	Backlog float64
	Arrival float64
	Service float64
}

// Audit accumulates the two sides of the realized drift inequality.
type Audit struct {
	// SquareTerms is Σ ½(a²+b²) over max-law queues plus Σ ½(c−d)² over
	// signed queues — the quantity Lemma 1 bounds by B.
	SquareTerms float64
	// CrossTerms is Σ Q·(a−b) + Σ H·(a−b) + Σ z·(c−d) — the terms the four
	// subproblems S1–S4 minimize.
	CrossTerms float64
}

// Bound returns the right-hand side of the realized drift inequality.
func (a Audit) Bound() float64 { return a.SquareTerms + a.CrossTerms }

// AddQueue accounts one max-law queue's slot (data or virtual queue).
func (a *Audit) AddQueue(f Flow) {
	a.SquareTerms += (f.Arrival*f.Arrival + f.Service*f.Service) / 2
	a.CrossTerms += f.Backlog * (f.Arrival - f.Service)
}

// AddSigned accounts one signed queue's slot: z' = z + up − down.
func (a *Audit) AddSigned(level, up, down float64) {
	d := up - down
	a.SquareTerms += d * d / 2
	a.CrossTerms += level * d
}

// QueueDriftUpperBound returns the per-queue bound ½(a²+b²) + Q(a−b) for a
// max-law queue — exposed for tests that check the algebra queue by queue.
func QueueDriftUpperBound(f Flow) float64 {
	return (f.Arrival*f.Arrival+f.Service*f.Service)/2 + f.Backlog*(f.Arrival-f.Service)
}

// StepMaxLaw applies Q' = max(Q−b,0)+a — the reference dynamics the bound
// is stated for.
func StepMaxLaw(q, a, b float64) float64 {
	q -= b
	if q < 0 {
		q = 0
	}
	return q + a
}
