module greencell

go 1.22
