// Quickstart: run the paper's scenario once with the proposed controller
// and print the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"greencell"
)

func main() {
	sc := greencell.PaperScenario()
	sc.Slots = 100 // paper horizon: 100 one-minute slots
	sc.V = 1e5

	res, err := greencell.Run(sc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("green multi-hop cellular network — proposed controller")
	fmt.Printf("  time-averaged energy cost f(P):  %.4g\n", res.AvgEnergyCost)
	fmt.Printf("  time-averaged grid draw:         %.3f Wh/slot\n", res.AvgGridWh)
	fmt.Printf("  packets admitted / delivered:    %.0f / %.0f\n", res.AdmittedPkts, res.DeliveredPkts)
	fmt.Printf("  final data backlog (BS/users):   %.0f / %.0f packets\n",
		res.FinalDataBacklogBS, res.FinalDataBacklogUsers)
	fmt.Printf("  final battery energy (BS/users): %.1f / %.1f Wh\n",
		res.FinalBatteryWhBS, res.FinalBatteryWhUsers)
	fmt.Printf("  unserved energy:                 %.3g Wh\n", res.DeficitWh)

	if res.StableDataBacklog(200) {
		fmt.Println("  backlog trajectories: flattening (strongly stable)")
	} else {
		fmt.Println("  backlog trajectories: still in transient at this horizon")
	}
}
