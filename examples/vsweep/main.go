// vsweep reproduces the experiment behind the paper's Fig. 2(a): for a
// sweep of drift-plus-penalty weights V it runs the proposed controller
// (upper bound, Theorem 4) and the relaxed controller (lower bound
// ψ*_P3̄ − B/V, Theorem 5) with common random numbers, and prints how the
// sandwich tightens as V grows.
//
//	go run ./examples/vsweep
package main

import (
	"fmt"
	"log"

	"greencell"
)

func main() {
	sc := greencell.PaperScenario()
	sc.Slots = 100

	vs := []float64{1e5, 2e5, 4e5, 6e5, 8e5, 1e6}
	bounds, err := greencell.SweepV(sc, vs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Theorem 4/5 bounds on the optimal time-averaged cost (Fig. 2a)")
	fmt.Printf("%10s  %14s  %14s  %12s\n", "V", "lower", "upper", "gap")
	for _, b := range bounds {
		fmt.Printf("%10.0e  %14.5g  %14.5g  %12.4g\n", b.V, b.Lower, b.Upper, b.Upper-b.Lower)
	}

	first := bounds[0]
	last := bounds[len(bounds)-1]
	fmt.Printf("\nthe gap shrank %.1fx from V=%.0e to V=%.0e — the B/V slack of\n",
		(first.Upper-first.Lower)/(last.Upper-last.Lower), first.V, last.V)
	fmt.Println("Lemma 2 vanishes and the two bounds pinch the unknown optimum ψ*_P1.")
}
