// extensions demonstrates the library features that go beyond the paper:
// Gilbert-Elliott (Markov) spectrum availability, diurnal renewable cycles,
// lossy battery storage, time-varying session demand, energy-aware
// scheduling, and exact per-packet delay tracking — all composed into one
// scenario and compared against the paper baseline.
//
//	go run ./examples/extensions
package main

import (
	"fmt"
	"log"

	"greencell"
	"greencell/internal/energy"
	"greencell/internal/sched"
	"greencell/internal/spectrum"
)

func main() {
	const slots = 100

	base := greencell.PaperScenario()
	base.Slots = slots
	base.KeepTraces = false
	base.TrackDelay = true

	rich := base
	// Shared bands appear and disappear with primary-user activity.
	sm := spectrum.Paper()
	for i := 1; i < sm.NumBands(); i++ {
		sm.Bands[i].Width = &spectrum.Markov{
			On:       spectrum.Uniform{Lo: 1e6, Hi: 2e6},
			POnToOff: 0.1,
			POffToOn: 0.3,
		}
	}
	rich.Topology.Spectrum = sm
	// Renewables follow a day cycle instead of being i.i.d.
	rich.Topology.BSSpec.Renewable = &energy.Diurnal{PeakWh: 3, PeriodSlots: slots, NoiseFrac: 0.2}
	rich.Topology.UserSpec.Renewable = &energy.Diurnal{PeakWh: 0.2, PeriodSlots: slots, NoiseFrac: 0.2}
	// Batteries lose 10% on each conversion.
	rich.Topology.BSSpec.Battery.ChargeEfficiency = 0.9
	rich.Topology.BSSpec.Battery.DischargeEfficiency = 0.9
	rich.Topology.UserSpec.Battery.ChargeEfficiency = 0.9
	rich.Topology.UserSpec.Battery.DischargeEfficiency = 0.9
	// Scheduling discounts power-hungry links.
	rich.Scheduler = sched.EnergyAware{Kappa: 5}

	fmt.Println("paper baseline vs fully-extended model (100 slots, same seed)")
	for _, cse := range []struct {
		name string
		sc   greencell.Scenario
	}{
		{"paper baseline", base},
		{"extended model", rich},
	} {
		res, err := greencell.Run(cse.sc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s\n", cse.name)
		fmt.Printf("  avg energy cost:        %.5g\n", res.AvgEnergyCost)
		fmt.Printf("  avg grid draw:          %.3f Wh/slot\n", res.AvgGridWh)
		fmt.Printf("  avg TX energy:          %.4f Wh/slot\n", res.AvgTxEnergyWh)
		fmt.Printf("  delivered packets:      %.0f\n", res.DeliveredPkts)
		fmt.Printf("  mean / max delay:       %.1f / %.0f slots\n",
			res.ExactDelayMeanSlots, res.ExactDelayMaxSlots)
		fmt.Printf("  unserved energy:        %.3g Wh\n", res.DeficitWh)
	}

	fmt.Println("\nthe extended model pays for realism: Markov band outages and night")
	fmt.Println("slots without renewables both push the provider back onto the grid,")
	fmt.Println("while lossy storage shrinks the buffer the controller can lean on.")
}
