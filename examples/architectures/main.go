// architectures reproduces the paper's Fig. 2(f): the time-averaged energy
// cost of four network designs — the proposed multi-hop network with
// renewable energy, multi-hop without renewables, one-hop with renewables,
// and the traditional one-hop grid-only design — under common random
// numbers.
//
//	go run ./examples/architectures
package main

import (
	"fmt"
	"log"

	"greencell"
)

func main() {
	sc := greencell.PaperScenario()
	sc.Slots = 100

	vs := []float64{1e5, 3e5, 5e5}
	costs, err := greencell.CompareArchitectures(sc, vs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("architecture comparison (Fig. 2f): time-averaged energy cost f(P)")
	fmt.Printf("%-32s", "architecture \\ V")
	for _, v := range vs {
		fmt.Printf("  %12.0e", v)
	}
	fmt.Println()

	byArch := map[greencell.Architecture]map[float64]float64{}
	for _, c := range costs {
		if byArch[c.Architecture] == nil {
			byArch[c.Architecture] = map[float64]float64{}
		}
		byArch[c.Architecture][c.V] = c.AvgCost.Value()
	}
	order := []greencell.Architecture{
		greencell.Proposed,
		greencell.OneHopRenewable,
		greencell.MultiHopNoRenewable,
		greencell.OneHopNoRenewable,
	}
	for _, a := range order {
		fmt.Printf("%-32v", a)
		for _, v := range vs {
			fmt.Printf("  %12.5g", byArch[a][v])
		}
		fmt.Println()
	}

	base := byArch[greencell.Proposed][vs[0]]
	fmt.Printf("\nat V=%.0e the proposed system saves %.0f%% versus the traditional\n",
		vs[0], 100*(1-base/byArch[greencell.OneHopNoRenewable][vs[0]]))
	fmt.Println("one-hop grid-only design: renewables absorb most of the grid draw and")
	fmt.Println("multi-hop relaying replaces high-power direct links with short hops.")
}
