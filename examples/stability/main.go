// stability reproduces the paper's Fig. 2(b)-(e): the evolution of the
// total data queue backlogs (base stations and users) and the total energy
// buffer levels over time for several values of V, rendered as compact
// ASCII charts. Bounded trajectories are the empirical face of the
// strong-stability guarantee (Theorem 3).
//
//	go run ./examples/stability
package main

import (
	"fmt"
	"log"
	"strings"

	"greencell"
)

func main() {
	sc := greencell.PaperScenario()
	sc.Slots = 100
	sc.KeepTraces = true

	vs := []float64{1e5, 3e5, 5e5}
	type labelled struct {
		name   string
		series map[float64][]float64
	}
	panels := []labelled{
		{name: "Fig 2(b): total BS data backlog (packets)", series: map[float64][]float64{}},
		{name: "Fig 2(c): total user data backlog (packets)", series: map[float64][]float64{}},
		{name: "Fig 2(d): total BS energy buffer (Wh)", series: map[float64][]float64{}},
		{name: "Fig 2(e): total user energy buffer (Wh)", series: map[float64][]float64{}},
	}

	for _, v := range vs {
		s := sc
		s.V = v
		res, err := greencell.Run(s)
		if err != nil {
			log.Fatal(err)
		}
		panels[0].series[v] = res.DataBacklogBSTrace
		panels[1].series[v] = res.DataBacklogUsersTrace
		panels[2].series[v] = res.BatteryWhBSTrace
		panels[3].series[v] = res.BatteryWhUsersTrace
	}

	for _, p := range panels {
		fmt.Println(p.name)
		for _, v := range vs {
			tr := p.series[v]
			fmt.Printf("  V=%.0e |%s| final %.0f\n", v, spark(tr, 60), tr[len(tr)-1])
		}
		fmt.Println()
	}
	fmt.Println("every trajectory rises and then flattens below a V-dependent ceiling —")
	fmt.Println("the network is strongly stable, with larger V trading longer queues for")
	fmt.Println("lower energy cost.")
}

// spark renders a series as a fixed-width ASCII sparkline.
func spark(series []float64, width int) string {
	if len(series) == 0 {
		return strings.Repeat(" ", width)
	}
	levels := []rune(" .:-=+*#%@")
	max := series[0]
	for _, v := range series {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		max = 1
	}
	var b strings.Builder
	for i := 0; i < width; i++ {
		v := series[i*len(series)/width]
		idx := int(v / max * float64(len(levels)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}
