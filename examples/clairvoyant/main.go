// clairvoyant compares the online drift-plus-penalty controller against the
// true offline (clairvoyant) optimum on a tiny instance where the offline
// problem — the paper's intractable time-coupled MINLP — can be solved by
// exhaustive schedule enumeration plus one joint LP per schedule
// combination. The paper itself never makes this comparison; on toy
// instances this library can.
//
//	go run ./examples/clairvoyant
package main

import (
	"fmt"
	"log"

	"greencell/internal/core"
	"greencell/internal/energy"
	"greencell/internal/geom"
	"greencell/internal/offline"
	"greencell/internal/radio"
	"greencell/internal/rng"
	"greencell/internal/spectrum"
	"greencell/internal/topology"
	"greencell/internal/traffic"
	"greencell/internal/units"
)

func main() {
	net, tm := tinyNetwork()
	const (
		T      = 4
		lambda = 0.05
	)
	cost := energy.Quadratic{A: 0.5, B: 0.1}

	// One shared realization: the offline solver sees the whole future; the
	// online controller observes it slot by slot.
	src := rng.New(7)
	realization := make([]core.Observation, T)
	for t := range realization {
		obs := core.Observation{
			Widths:    []units.Bandwidth{units.Hz(1e6)},
			RenewWh:   make([]units.Energy, net.NumNodes()),
			Connected: make([]bool, net.NumNodes()),
		}
		for i := range obs.RenewWh {
			obs.RenewWh[i] = units.Wh(src.Uniform(0, 0.08))
			obs.Connected[i] = true
		}
		realization[t] = obs
	}

	off, err := offline.Solve(&offline.Instance{
		Net:         net,
		Traffic:     tm,
		SlotSeconds: 60,
		Cost:        cost,
		Lambda:      lambda,
		Realization: realization,
		CostCuts:    48,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("clairvoyant optimum (T=%d, %d schedule combos over patterns %v):\n",
		T, off.Combos, off.PatternsPerSlot)
	fmt.Printf("  objective (cut relaxation):  %.6g\n", off.Objective)
	fmt.Printf("  objective (exact f):         %.6g\n", off.TrueObjective)
	fmt.Printf("  admitted packets:            %.1f\n", off.AdmittedPkts)

	fmt.Println("\nonline drift-plus-penalty on the same realization:")
	fmt.Printf("%10s %14s %14s\n", "V", "online obj", "vs offline")
	for _, v := range []float64{1e2, 1e3, 1e4} {
		ctrl, err := core.New(core.Config{
			Net:         net,
			Traffic:     tm,
			V:           v,
			Lambda:      lambda,
			SlotSeconds: 60,
			Cost:        cost,
			EnergyGate:  true,
			Env:         core.FixedEnvironment{Slots: realization},
		})
		if err != nil {
			log.Fatal(err)
		}
		runSrc := rng.New(1)
		obj := 0.0
		for t := 0; t < T; t++ {
			sr, err := ctrl.Step(runSrc)
			if err != nil {
				log.Fatal(err)
			}
			obj += sr.PenaltyObjective / T
		}
		fmt.Printf("%10.0e %14.6g %+13.1f%%\n", v, obj,
			100*(obj-off.TrueObjective)/max(1e-12, abs(off.TrueObjective)))
	}
	fmt.Println("\nthe online controller can never beat the clairvoyant value; the gap")
	fmt.Println("is the price of causality that Theorem 4's O(B/V) bound quantifies.")
}

func tinyNetwork() (*topology.Network, *traffic.Model) {
	sm := &spectrum.Model{Bands: []spectrum.Band{
		{Name: "cell", Width: spectrum.Constant(1e6), Universal: true},
	}}
	spec := func(maxTx float64) topology.NodeSpec {
		return topology.NodeSpec{
			MaxTxPowerW: units.Watts(maxTx),
			RecvPowerW:  0.05,
			ConstPowerW: 1,
			IdlePowerW:  0.5,
			Battery:     energy.BatterySpec{CapacityWh: 10, MaxChargeWh: 0.5, MaxDischargeWh: 0.5},
			Renewable:   energy.ConstantPower(0.05),
			Grid:        energy.GridConnection{MaxDrawWh: 50, AlwaysOn: true},
		}
	}
	nodes := []topology.Node{
		{Kind: topology.BaseStation, Pos: geom.Point{X: 0, Y: 0}, Spec: spec(20)},
		{Kind: topology.User, Pos: geom.Point{X: 400, Y: 0}, Spec: spec(1)},
		{Kind: topology.User, Pos: geom.Point{X: 800, Y: 0}, Spec: spec(1)},
	}
	avail := spectrum.NewAvailability(len(nodes), sm)
	for i := range nodes {
		avail.GrantAll(i)
	}
	rp := radio.Params{Prop: radio.Propagation{C: 62.5, Gamma: 4}, SINRThreshold: 1, NoiseDensity: 3e-17}
	net, err := topology.Manual(nodes, sm, avail, rp, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		log.Fatal(err)
	}
	tm := &traffic.Model{
		PacketBits: 1.2e6,
		Sessions:   []traffic.Session{{ID: 0, Dest: 2, DemandPkts: 10, MaxAdmission: 10}},
	}
	return net, tm
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
