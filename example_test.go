package greencell_test

import (
	"fmt"

	"greencell"
)

// Example runs the paper scenario at reduced scale and reports whether the
// Theorem 4/5 bound sandwich holds.
func Example() {
	sc := greencell.PaperScenario()
	sc.Topology.NumUsers = 8
	sc.NumSessions = 2
	sc.Slots = 10
	sc.KeepTraces = false

	b, err := greencell.BoundsAt(sc, 5e5)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("sandwich holds:", b.Lower <= b.Upper)
	// Output: sandwich holds: true
}

// ExampleCompareArchitectures reproduces the Fig. 2(f) ordering at reduced
// scale: renewable integration must beat the grid-only design.
func ExampleCompareArchitectures() {
	sc := greencell.PaperScenario()
	sc.Topology.NumUsers = 8
	sc.NumSessions = 2
	sc.Slots = 10
	sc.KeepTraces = false

	costs, err := greencell.CompareArchitectures(sc, []float64{1e5})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	byArch := map[greencell.Architecture]float64{}
	for _, c := range costs {
		byArch[c.Architecture] = c.AvgCost.Value()
	}
	fmt.Println("renewables pay off:",
		byArch[greencell.Proposed] < byArch[greencell.OneHopNoRenewable])
	// Output: renewables pay off: true
}
