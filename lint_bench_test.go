// BenchmarkLintRepo tracks the analyzer suite's end-to-end cost on the
// benchmark trajectory (docs/PERFORMANCE.md): one iteration type-checks the
// serving layer — the packages the flow-sensitive analyzers (detflow,
// locksafe, resleak, ctxflow) actually dig into — and runs every analyzer
// over it, the same work `make lint` does per package. The load is inside
// the timed loop on purpose: parsing and type-checking dominate real lint
// wall time, and an analyzer that forces extra type-checker work should
// show up here, not hide behind a cached loader.
package greencell_test

import (
	"testing"

	"greencell/internal/analysis"
)

func BenchmarkLintRepo(b *testing.B) {
	dirs := []string{"internal/analysis", "internal/cluster", "internal/server"}
	var findings int
	for i := 0; i < b.N; i++ {
		loader, err := analysis.NewLoader(".")
		if err != nil {
			b.Fatalf("NewLoader: %v", err)
		}
		var pkgs []*analysis.Package
		for _, dir := range dirs {
			got, err := loader.LoadDir(dir)
			if err != nil {
				b.Fatalf("LoadDir(%s): %v", dir, err)
			}
			pkgs = append(pkgs, got...)
		}
		findings = len(analysis.Run(pkgs, analysis.All()))
	}
	// The lint gate holds the repo finding-free; a nonzero count here means
	// the benchmark corpus drifted, not that the benchmark should pass.
	b.ReportMetric(float64(findings), "findings/op")
	b.ReportMetric(float64(len(analysis.All())), "analyzers")
}
