# Development targets. `make check` is the gate every change must pass:
# it builds all packages, vets them, and runs the tests under the race
# detector (the sim package replicates runs on concurrent goroutines, so
# -race is load-bearing, not ceremonial).

GO ?= go

.PHONY: check build vet test race bench fmt figures clean

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

fmt:
	gofmt -l -w .

figures:
	$(GO) run ./cmd/figures -out out

clean:
	rm -rf out
