# Development targets. `make check` is the gate every change must pass:
# it builds all packages, vets them, lints them with the project analyzers
# (docs/ANALYSIS.md), and runs the tests under the race detector (the sim
# package replicates runs on concurrent goroutines, so -race is
# load-bearing, not ceremonial). `make ci` is the stricter batch gate:
# check plus a gofmt diff check, the units-check golden byte-identity
# gate, a short fuzz smoke, the fault soak (docs/ROBUSTNESS.md): a
# long run with every injection site firing at an elevated rate, per-slot
# invariants on, under the race detector — the serve and cluster smokes
# (docs/SERVER.md, docs/CLUSTER.md) — and bench-json, the benchmark
# trajectory gate (docs/PERFORMANCE.md).

GO ?= go
FUZZTIME ?= 15s

# The full analyzer suite, spelled out so `make lint` exercises the
# driver's -analyzers selection path; must match analysis.All().
ANALYZERS = norawrand,nofloateq,droppederr,unguardedgo,unitmix,mapiter,wallclock,detflow,locksafe,hotalloc,resleak,ctxflow,errcmp

.PHONY: check ci build vet lint lint-audit lint-sarif test race fuzz soak bench bench-json fmt fmtcheck units-check dist-check serve-smoke cluster-smoke figures clean

check: build vet lint race

ci: fmtcheck check lint-audit lint-sarif units-check dist-check fuzz soak serve-smoke cluster-smoke bench-json

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/greencell-lint -timings -analyzers $(ANALYZERS) ./...

# Fails on //lint:allow annotations whose analyzer no longer fires on the
# lines they cover, so suppressions are pruned with the code they excused.
lint-audit:
	$(GO) run ./cmd/greencell-lint -audit-suppressions ./...

# Machine-readable lint log for code-review upload (SARIF 2.1.0); the run
# both gates (exit 1 on findings) and leaves the log in out/.
lint-sarif:
	@mkdir -p out
	$(GO) run ./cmd/greencell-lint -sarif -analyzers $(ANALYZERS) ./... > out/lint.sarif

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz:
	$(GO) test -run=FuzzScenario -fuzz=FuzzScenario -fuzztime=$(FUZZTIME) ./internal/sim
	$(GO) test -run=FuzzNetworkRunner -fuzz=FuzzNetworkRunner -fuzztime=$(FUZZTIME) ./internal/sim

soak:
	$(GO) test -race -run='TestFaultSoak|TestFaultEverySite' -v ./internal/sim

bench:
	$(GO) test -bench=. -benchmem .

# Benchmark trajectory gate (docs/PERFORMANCE.md): smoke-runs every
# trajectory benchmark once to prove the harness still parses, validates
# the committed BENCH_9.json, and fails on a >20% ns/op regression
# between its last two trajectory points. Record a new point with:
#   go run ./cmd/benchtrend -label <point-label>
bench-json:
	$(GO) run ./cmd/benchtrend -check

fmt:
	gofmt -l -w .

fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Asserts the fixed-seed metrics JSONL stream is byte-identical to the
# committed golden fixture — the typed-units refactor contract
# (docs/ANALYSIS.md). Regenerate deliberately with:
#   go test ./internal/sim -run MetricsGoldenByteIdentity -update
units-check:
	$(GO) test ./internal/sim -run MetricsGoldenByteIdentity

# Distributed-controller gate (docs/DISTRIBUTED.md): the fidelity check —
# a perfect-network distributed run must be byte-identical to the
# monolithic golden fixture — plus the 1000-slot 5%-loss soak with
# per-node invariants on and bit-identical reruns asserted.
dist-check:
	$(GO) test ./internal/sim -run 'TestDistPerfectMatchesMonolith|TestDistFidelityGolden|TestDistLossSoak|TestDistPartition' -v
	$(GO) test ./internal/machine

# End-to-end daemon gate (docs/SERVER.md): builds greencelld and
# greencellsim, submits the golden scenario over HTTP, diffs the streamed
# metrics against the golden fixture, then SIGTERMs a running job and
# verifies the drain leaves it journaled and recoverable on restart.
serve-smoke:
	GREENCELL_SERVE_SMOKE=1 $(GO) test -run TestServeSmoke -v ./internal/server

# End-to-end cluster gate (docs/CLUSTER.md): builds greencelld,
# greencell-coord, and greencellsim, runs a coordinator over three worker
# daemons, diffs the golden scenario streamed through the coordinator
# against the committed fixture, SIGKILLs a worker holding a lease
# mid-job and verifies the re-dispatched merged stream still matches the
# local golden byte-for-byte, then proves a resubmit is served entirely
# from the content-addressed cache (zero new dispatches).
cluster-smoke:
	GREENCELL_CLUSTER_SMOKE=1 $(GO) test -run TestClusterSmoke -timeout 300s -v ./internal/cluster

figures:
	$(GO) run ./cmd/figures -out out

clean:
	rm -rf out
