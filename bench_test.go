// Benchmarks that regenerate each panel of the paper's Figure 2. Every
// benchmark runs the corresponding experiment end to end (at a reduced
// horizon so iterations stay in the seconds range; cmd/figures regenerates
// the full paper-scale series) and reports the panel's headline quantity as
// a custom metric, so `go test -bench=. -benchmem` doubles as a compact
// reproduction report:
//
//	Fig2a: bound-gap-ratio-V1e5 / -V1e6  (gap shrinks as V grows)
//	Fig2b/c: final data backlogs, bounded (strong stability)
//	Fig2d/e: final energy buffers, growing but capped
//	Fig2f: cost ratios of the three baselines over the proposed system
package greencell_test

import (
	"testing"

	"greencell"
)

// benchScenario is the paper scenario at a horizon that keeps a single
// benchmark iteration around a second.
func benchScenario() greencell.Scenario {
	sc := greencell.PaperScenario()
	sc.Slots = 40
	sc.KeepTraces = true
	return sc
}

// BenchmarkFig2aBounds reproduces Fig. 2(a): the Theorem 4/5 upper/lower
// bounds on the optimal energy cost, and their tightening in V.
func BenchmarkFig2aBounds(b *testing.B) {
	sc := benchScenario()
	var gapSmall, gapLarge float64
	for i := 0; i < b.N; i++ {
		lo, err := greencell.BoundsAt(sc, 1e5)
		if err != nil {
			b.Fatal(err)
		}
		hi, err := greencell.BoundsAt(sc, 1e6)
		if err != nil {
			b.Fatal(err)
		}
		gapSmall = lo.Upper - lo.Lower
		gapLarge = hi.Upper - hi.Lower
	}
	b.ReportMetric(gapSmall, "gap-V1e5")
	b.ReportMetric(gapLarge, "gap-V1e6")
	b.ReportMetric(gapLarge/gapSmall, "gap-shrink-ratio")
}

// BenchmarkFig2bDataBacklogBS reproduces Fig. 2(b): the total base-station
// data queue backlog over time under the proposed algorithm.
func BenchmarkFig2bDataBacklogBS(b *testing.B) {
	sc := benchScenario()
	var final float64
	for i := 0; i < b.N; i++ {
		res, err := greencell.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		final = res.FinalDataBacklogBS
	}
	b.ReportMetric(final, "final-backlog-pkts")
}

// BenchmarkFig2cDataBacklogUsers reproduces Fig. 2(c): the total mobile-user
// data queue backlog over time.
func BenchmarkFig2cDataBacklogUsers(b *testing.B) {
	sc := benchScenario()
	var final float64
	for i := 0; i < b.N; i++ {
		res, err := greencell.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		final = res.FinalDataBacklogUsers
	}
	b.ReportMetric(final, "final-backlog-pkts")
}

// BenchmarkFig2dEnergyBufferBS reproduces Fig. 2(d): the total base-station
// energy buffer (battery) level over time.
func BenchmarkFig2dEnergyBufferBS(b *testing.B) {
	sc := benchScenario()
	var final float64
	for i := 0; i < b.N; i++ {
		res, err := greencell.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		final = res.FinalBatteryWhBS.Wh()
	}
	b.ReportMetric(final, "final-buffer-Wh")
}

// BenchmarkFig2eEnergyBufferUsers reproduces Fig. 2(e): the total mobile-user
// energy buffer level over time.
func BenchmarkFig2eEnergyBufferUsers(b *testing.B) {
	sc := benchScenario()
	var final float64
	for i := 0; i < b.N; i++ {
		res, err := greencell.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		final = res.FinalBatteryWhUsers.Wh()
	}
	b.ReportMetric(final, "final-buffer-Wh")
}

// BenchmarkFig2fArchitectures reproduces Fig. 2(f): the time-averaged energy
// cost of the four architectures. The reported metrics are each baseline's
// cost relative to the proposed system (all should exceed 1).
func BenchmarkFig2fArchitectures(b *testing.B) {
	sc := benchScenario()
	sc.KeepTraces = false
	byArch := map[greencell.Architecture]float64{}
	for i := 0; i < b.N; i++ {
		costs, err := greencell.CompareArchitectures(sc, []float64{1e5})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range costs {
			byArch[c.Architecture] = c.AvgCost.Value()
		}
	}
	base := byArch[greencell.Proposed]
	if base > 0 {
		b.ReportMetric(byArch[greencell.MultiHopNoRenewable]/base, "multihop-nr-x")
		b.ReportMetric(byArch[greencell.OneHopRenewable]/base, "onehop-r-x")
		b.ReportMetric(byArch[greencell.OneHopNoRenewable]/base, "onehop-nr-x")
	}
}
