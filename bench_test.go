// Benchmarks that regenerate each panel of the paper's Figure 2. Every
// benchmark runs the corresponding experiment end to end (at a reduced
// horizon so iterations stay in the seconds range; cmd/figures regenerates
// the full paper-scale series) and reports the panel's headline quantity as
// a custom metric, so `go test -bench=. -benchmem` doubles as a compact
// reproduction report:
//
//	Fig2a: bound-gap-ratio-V1e5 / -V1e6  (gap shrinks as V grows)
//	Fig2b/c: final data backlogs, bounded (strong stability)
//	Fig2d/e: final energy buffers, growing but capped
//	Fig2f: cost ratios of the three baselines over the proposed system
package greencell_test

import (
	"testing"

	"greencell"
	"greencell/internal/core"
)

// benchScenario is the paper scenario at a horizon that keeps a single
// benchmark iteration in the tens-of-milliseconds range. Warm-started LP
// solving is on — these benchmarks track the performance of the fast path
// (docs/PERFORMANCE.md); BenchmarkWarmStartSlots keeps the cold/warm
// comparison honest.
func benchScenario() greencell.Scenario {
	sc := greencell.PaperScenario()
	sc.Slots = 40
	sc.KeepTraces = true
	sc.WarmStartLP = true
	return sc
}

// BenchmarkFig2aBounds reproduces Fig. 2(a): the Theorem 4/5 upper/lower
// bounds on the optimal energy cost, and their tightening in V.
func BenchmarkFig2aBounds(b *testing.B) {
	sc := benchScenario()
	var gapSmall, gapLarge float64
	for i := 0; i < b.N; i++ {
		lo, err := greencell.BoundsAt(sc, 1e5)
		if err != nil {
			b.Fatal(err)
		}
		hi, err := greencell.BoundsAt(sc, 1e6)
		if err != nil {
			b.Fatal(err)
		}
		gapSmall = lo.Upper - lo.Lower
		gapLarge = hi.Upper - hi.Lower
	}
	b.ReportMetric(gapSmall, "gap-V1e5")
	b.ReportMetric(gapLarge, "gap-V1e6")
	b.ReportMetric(gapLarge/gapSmall, "gap-shrink-ratio")
}

// BenchmarkFig2bDataBacklogBS reproduces Fig. 2(b): the total base-station
// data queue backlog over time under the proposed algorithm.
func BenchmarkFig2bDataBacklogBS(b *testing.B) {
	sc := benchScenario()
	var final float64
	for i := 0; i < b.N; i++ {
		res, err := greencell.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		final = res.FinalDataBacklogBS
	}
	b.ReportMetric(final, "final-backlog-pkts")
}

// BenchmarkFig2cDataBacklogUsers reproduces Fig. 2(c): the total mobile-user
// data queue backlog over time.
func BenchmarkFig2cDataBacklogUsers(b *testing.B) {
	sc := benchScenario()
	var final float64
	for i := 0; i < b.N; i++ {
		res, err := greencell.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		final = res.FinalDataBacklogUsers
	}
	b.ReportMetric(final, "final-backlog-pkts")
}

// BenchmarkFig2dEnergyBufferBS reproduces Fig. 2(d): the total base-station
// energy buffer (battery) level over time.
func BenchmarkFig2dEnergyBufferBS(b *testing.B) {
	sc := benchScenario()
	var final float64
	for i := 0; i < b.N; i++ {
		res, err := greencell.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		final = res.FinalBatteryWhBS.Wh()
	}
	b.ReportMetric(final, "final-buffer-Wh")
}

// BenchmarkFig2eEnergyBufferUsers reproduces Fig. 2(e): the total mobile-user
// energy buffer level over time.
func BenchmarkFig2eEnergyBufferUsers(b *testing.B) {
	sc := benchScenario()
	var final float64
	for i := 0; i < b.N; i++ {
		res, err := greencell.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		final = res.FinalBatteryWhUsers.Wh()
	}
	b.ReportMetric(final, "final-buffer-Wh")
}

// BenchmarkWarmStartSlots compares the cold and warm LP paths on the same
// slot sequence (the paper scenario driven by SequentialFix + S4). Besides
// ns/op it reports the LP work per slot — solves, simplex iterations, and
// for the warm path the warm-start/invalidation counts — which is what
// BENCH_*.json tracks across PRs (docs/PERFORMANCE.md).
func BenchmarkWarmStartSlots(b *testing.B) {
	for _, mode := range []struct {
		name string
		warm bool
	}{{"cold", false}, {"warm", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var iters, solves, warmed, invalidated, slots int
			for i := 0; i < b.N; i++ {
				sc := benchScenario()
				sc.KeepTraces = false
				sc.WarmStartLP = mode.warm
				sc.Instrument = true
				sc.SlotHook = func(sr *core.SlotResult) {
					slots++
					if st := sr.Stages; st != nil {
						solves += st.SchedLPSolves + st.S4LPSolves
						iters += st.SchedLPIterations + st.S4LPIterations
						warmed += st.LPWarmStarts
						invalidated += st.LPBasisInvalidations
					}
				}
				if _, err := greencell.Run(sc); err != nil {
					b.Fatal(err)
				}
			}
			if slots > 0 {
				b.ReportMetric(float64(iters)/float64(slots), "lp-iters/slot")
				b.ReportMetric(float64(solves)/float64(slots), "lp-solves/slot")
				if mode.warm {
					b.ReportMetric(float64(warmed)/float64(slots), "warm-starts/slot")
					b.ReportMetric(float64(invalidated)/float64(slots), "invalidations/slot")
				}
			}
		})
	}
}

// BenchmarkFig2fArchitectures reproduces Fig. 2(f): the time-averaged energy
// cost of the four architectures. The reported metrics are each baseline's
// cost relative to the proposed system (all should exceed 1).
func BenchmarkFig2fArchitectures(b *testing.B) {
	sc := benchScenario()
	sc.KeepTraces = false
	byArch := map[greencell.Architecture]float64{}
	for i := 0; i < b.N; i++ {
		costs, err := greencell.CompareArchitectures(sc, []float64{1e5})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range costs {
			byArch[c.Architecture] = c.AvgCost.Value()
		}
	}
	base := byArch[greencell.Proposed]
	if base > 0 {
		b.ReportMetric(byArch[greencell.MultiHopNoRenewable]/base, "multihop-nr-x")
		b.ReportMetric(byArch[greencell.OneHopRenewable]/base, "onehop-r-x")
		b.ReportMetric(byArch[greencell.OneHopNoRenewable]/base, "onehop-nr-x")
	}
}
